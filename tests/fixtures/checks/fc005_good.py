"""FC005 satisfied: both counters() dicts expose the same key set,
every key has a backing field, and the tenant_counters() inner dicts
agree too."""


class SimulationMetrics:
    warm_starts: int = 0
    cold_starts: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
        }

    def tenant_counters(self):
        return {
            tenant_id: {
                "warm_starts": outcome.warm,
                "cold_starts": outcome.cold,
            }
            for tenant_id, outcome in sorted(self.per_tenant.items())
        }


class TraceReport:
    warm_hits: int = 0
    cold_hits: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_hits,
            "cold_starts": self.cold_hits,
        }

    def tenant_counters(self):
        return {
            tenant_id: {
                "warm_starts": outcome["warm_starts"],
                "cold_starts": outcome["cold_starts"],
            }
            for tenant_id, outcome in sorted(self._tenant_outcomes.items())
        }

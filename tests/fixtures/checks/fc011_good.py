# repro-checks-module: repro.sim.fixture_fc011_ok
"""FC011 fixed: handlers re-raise, emit a traced event, increment a
failure counter, or at least act on the caught exception; narrow
handlers doing real fallback work are trusted."""


def tick(pool, tracer):
    try:
        pool.advance()
    except Exception:
        tracer.emit("fault_injected", 0.0)
        raise


def lookup(table, key, default):
    try:
        return table[key]
    except KeyError:
        return default  # narrow handler with a real fallback


def run_step(sim):
    try:
        sim.step()
    except Exception as exc:
        sim.failures += 1
        sim.last_error = str(exc)
    return sim

# repro-checks-module: repro.analysis.fixture_fc007
"""FC007: exact float equality in priority math.

Scoped to ``repro.analysis`` since PR 5: the statistics helpers feed
the HIST policy's predictability classifier, so their zero-guards are
priority math too."""


def same_priority(a: float) -> bool:
    return a == 1.0


def coefficient_of_variation(mean: float, stddev: float) -> float:
    # The repro.analysis.stats pattern before PR 5.
    if mean == 0.0:
        return 0.0
    return stddev / mean

# repro-checks-module: repro.core.fixture_fc007
"""FC007: exact float equality in priority math."""


def same_priority(a: float) -> bool:
    return a == 1.0

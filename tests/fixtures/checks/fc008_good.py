"""FC008 fixed: the container is created per call."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket

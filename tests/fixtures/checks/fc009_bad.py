# repro-checks-module: repro.live.fixture_fc009
"""FC009: a helper reachable from two public entry points mutates
ContainerPool state directly — no lock, no synchronization decorator,
in a module that imports a concurrency primitive."""

import threading

from repro.core.pool import ContainerPool


def handle_invocation(pool: ContainerPool, name):
    _reap(pool, name)


def reclaim_idle(pool: ContainerPool):
    _reap(pool, None)


def _reap(pool: ContainerPool, name):
    pool.in_use = name
    pool.by_function.pop(name, None)

# repro-checks-module: repro.sim.fixture_fc001_ok
"""FC001 fixed: wall timing routed through the sanctioned accessor."""

from repro.core.clock import wall_clock_s


def measure_replay() -> float:
    started = wall_clock_s()
    return wall_clock_s() - started

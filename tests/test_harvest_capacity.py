"""Harvested/spot capacity: timelines, graceful deflation, draining.

Covers the time-varying-resources subsystem end to end
(docs/robustness.md):

* :class:`repro.faults.FaultModel` capacity timelines — explicit
  shrink/grow steps, seeded rate-based harvest streams, spot evictions
  with a notice window, and the merged per-server event schedule;
* :meth:`repro.core.pool.ContainerPool.deflate_to` — victim-order
  eviction through the lazy index, deferral while busy containers hold
  the memory, resumption as they finish, tenant-mode interactions;
* the quota branch of tenant victim selection running through
  ``iter_victims`` with no materialized sort (regression for the
  thousands-of-tenants scaling bottleneck);
* load-balancer draining semantics and the min-worker-set /
  join-shortest-queue policies;
* cross-``PYTHONHASHSEED`` subprocess determinism of a harvested
  replay, and a randomized differential test that deflation's outcome
  is independent of eviction batching (chunked vs one-shot).
"""

import json
import os
import pathlib
import random
import subprocess
import sys

import pytest

from repro.cluster.loadbalancer import (
    NoHealthyServers,
    create_balancer,
)
from repro.cluster.simulation import ClusterSimulator, _server_level_spec
from repro.core.container import Container
from repro.core.policies.base import create_policy
from repro.core.pool import CapacityError, ContainerPool
from repro.faults import CapacityStep, FaultModel, FaultSpec
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import harvest_day_trace

REPO = pathlib.Path(__file__).resolve().parents[1]


def make_function(name, memory_mb=100.0, tenant_id=0):
    return TraceFunction(name, memory_mb, 0.1, 1.0, tenant_id=tenant_id)


def _key_of(container):
    return (0.0, container.last_used_s, container.container_id)


# ----------------------------------------------------------------------
# Fault-model capacity timelines
# ----------------------------------------------------------------------


class TestCapacityTimeline:
    def test_explicit_steps_filtered_and_sorted(self):
        spec = FaultSpec(
            capacity_steps=(
                CapacityStep(server=1, time_s=50.0, capacity_frac=0.5),
                CapacityStep(server=0, time_s=30.0, capacity_frac=0.8),
                CapacityStep(server=0, time_s=10.0, capacity_frac=0.6),
            )
        )
        model = FaultModel(spec)
        assert model.capacity_timeline(0, 100.0) == [
            (10.0, 0.6),
            (30.0, 0.8),
        ]
        assert model.capacity_timeline(1, 100.0) == [(50.0, 0.5)]
        assert model.capacity_timeline(2, 100.0) == []
        # Steps beyond the horizon are dropped.
        assert model.capacity_timeline(1, 40.0) == []

    def test_rate_based_stream_is_deterministic_and_per_server(self):
        spec = FaultSpec(seed=9, harvest_interval_s=100.0)
        a = FaultModel(spec).capacity_timeline(0, 5000.0)
        b = FaultModel(spec).capacity_timeline(0, 5000.0)
        assert a == b
        assert a  # the stream actually produced events
        other = FaultModel(spec).capacity_timeline(1, 5000.0)
        assert a != other  # per-server derived seeds
        for __, frac in a:
            assert spec.harvest_min_frac <= frac <= spec.harvest_max_frac

    def test_disabled_spec_has_no_capacity_events(self):
        spec = FaultSpec(seed=3)
        assert not spec.enabled
        model = FaultModel(spec)
        assert model.capacity_timeline(0, 10_000.0) == []
        assert model.spot_evictions(0, 10_000.0) == []
        assert model.server_capacity_events(0, 10_000.0) == []

    def test_spot_notice_precedes_eviction(self):
        spec = FaultSpec(seed=5, spot_mtbf_s=500.0, spot_notice_s=60.0)
        pairs = FaultModel(spec).spot_evictions(0, 20_000.0)
        assert pairs
        for notice_s, evict_s in pairs:
            assert notice_s <= evict_s
            assert evict_s - notice_s <= 60.0 + 1e-9

    def test_server_capacity_events_tie_order_and_restore(self):
        spec = FaultSpec(
            seed=5,
            spot_mtbf_s=800.0,
            spot_notice_s=30.0,
            server_recovery_s=120.0,
        )
        events = FaultModel(spec).server_capacity_events(0, 20_000.0)
        kinds = [kind for __, kind, __v in events]
        assert "notice" in kinds and "evict" in kinds
        # Every evict is announced by an earlier notice carrying its
        # time, and followed by a restore exactly recovery later (when
        # inside the horizon).
        notice_targets = [
            value for __, kind, value in events if kind == "notice"
        ]
        restore_times = [
            at_s for at_s, kind, __v in events if kind == "restore"
        ]
        for at_s, kind, value in events:
            if kind == "notice":
                assert value >= at_s  # carries the eviction time
            if kind == "evict":
                assert at_s in notice_targets
                if at_s + 120.0 <= 20_000.0:
                    assert any(
                        r == pytest.approx(at_s + 120.0)
                        for r in restore_times
                    )
        times = [at_s for at_s, __, __v in events]
        assert times == sorted(times)

    def test_capacity_schedule_merges_servers_in_time_order(self):
        spec = FaultSpec(seed=2, harvest_interval_s=400.0)
        schedule = FaultModel(spec).capacity_schedule(3, 10_000.0)
        assert schedule
        times = [at_s for at_s, __, __k, __v in schedule]
        assert times == sorted(times)
        assert {server for __, server, __k, __v in schedule} <= {0, 1, 2}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(harvest_interval_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(harvest_interval_s=10.0, harvest_min_frac=0.0)
        with pytest.raises(ValueError):
            FaultSpec(
                harvest_interval_s=10.0,
                harvest_min_frac=0.9,
                harvest_max_frac=0.5,
            )
        with pytest.raises(ValueError):
            FaultSpec(spot_mtbf_s=-5.0)
        with pytest.raises(ValueError):
            CapacityStep(server=0, time_s=0.0, capacity_frac=1.5)

    def test_round_trip_through_dict(self):
        spec = FaultSpec(
            seed=11,
            harvest_interval_s=300.0,
            spot_mtbf_s=900.0,
            capacity_steps=(
                CapacityStep(server=0, time_s=60.0, capacity_frac=0.5),
            ),
        )
        clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.enabled


# ----------------------------------------------------------------------
# Graceful pool deflation
# ----------------------------------------------------------------------


class TestDeflateTo:
    def _pool_with_idle(self, count=5, memory_mb=100.0):
        pool = ContainerPool(count * memory_mb)
        containers = []
        for i in range(count):
            c = Container(make_function(f"f{i}", memory_mb), 0.0)
            c.last_used_s = float(i)  # victim order: f0 first
            pool.add(c)
            containers.append(c)
        return pool, containers

    def test_idle_eviction_in_victim_order(self):
        pool, containers = self._pool_with_idle()
        victims = pool.deflate_to(300.0, _key_of)
        assert victims == containers[:2]
        assert pool.capacity_mb == 300.0
        assert pool.deflation_target_mb is None
        assert pool.deflation_deferred_mb == 0.0

    def test_set_capacity_contract_unchanged(self):
        pool, __ = self._pool_with_idle()
        with pytest.raises(CapacityError):
            pool.set_capacity(300.0)  # strict shrink still refuses

    def test_deflate_rejects_nonpositive_target(self):
        pool, __ = self._pool_with_idle()
        with pytest.raises(ValueError):
            pool.deflate_to(0.0, _key_of)

    def test_busy_containers_defer_the_shrink(self):
        pool, containers = self._pool_with_idle()
        for c in containers:
            c.start_invocation(10.0, 100.0)  # all busy until t=110
        victims = pool.deflate_to(250.0, _key_of)
        assert victims == []
        # No admissions while deferred: capacity clamps to what the
        # busy containers hold, and the shortfall is visible.
        assert pool.capacity_mb == pytest.approx(500.0)
        assert pool.deflation_target_mb == pytest.approx(250.0)
        assert pool.deflation_deferred_mb == pytest.approx(250.0)
        # Two containers finish: resumption frees exactly them.
        for c in containers[:2]:
            c.finish_invocation(110.0)
        resumed = pool.resume_deflation(_key_of)
        assert resumed == containers[:2]
        assert pool.deflation_target_mb == pytest.approx(250.0)
        # The rest finish; the deflation settles at the target.
        for c in containers[2:]:
            c.finish_invocation(120.0)
        resumed = pool.resume_deflation(_key_of)
        assert len(resumed) == 1
        assert pool.deflation_target_mb is None
        assert pool.capacity_mb == pytest.approx(250.0)

    def test_resume_without_pending_is_noop(self):
        pool, __ = self._pool_with_idle()
        assert pool.resume_deflation(_key_of) == []

    def test_growth_restores_partitioned_slices(self):
        limits = {1: 300.0, 2: 200.0}
        pool = ContainerPool(
            500.0, tenant_mode="partitioned", tenant_limits_mb=limits
        )
        pool.deflate_to(250.0, _key_of)
        assert pool.tenant_limit_mb(1) == pytest.approx(150.0)
        assert pool.tenant_limit_mb(2) == pytest.approx(100.0)
        pool.deflate_to(500.0, _key_of)  # grow back
        assert pool.tenant_limit_mb(1) == pytest.approx(300.0)
        assert pool.tenant_limit_mb(2) == pytest.approx(200.0)

    def test_quota_mode_deflates_over_quota_tenants_first(self):
        pool = ContainerPool(
            1000.0, tenant_mode="quota", tenant_limits_mb={1: 100.0, 2: 500.0}
        )
        hog = []
        for i in range(3):  # tenant 1 holds 300 MB against a 100 MB quota
            c = Container(make_function(f"hog{i}", 100.0, tenant_id=1), 0.0)
            c.last_used_s = 100.0 + i  # recently used: last in LRU order
            pool.add(c)
            hog.append(c)
        quiet = []
        for i in range(2):
            c = Container(make_function(f"quiet{i}", 100.0, tenant_id=2), 0.0)
            c.last_used_s = float(i)  # oldest — plain LRU would pick these
            pool.add(c)
            quiet.append(c)
        victims = pool.deflate_to(300.0, _key_of)
        # The 200 MB deficit comes entirely out of the over-quota
        # tenant despite its containers being the most recently used.
        assert victims == hog[:2]
        assert all(c not in victims for c in quiet)

    def test_pinned_containers_never_deflate(self):
        pool = ContainerPool(200.0)
        pinned = Container(make_function("pinned", 100.0), 0.0)
        pinned.pinned = True
        pool.add(pinned)
        idle = Container(make_function("idle", 100.0), 0.0)
        pool.add(idle)
        victims = pool.deflate_to(50.0, _key_of)
        assert victims == [idle]
        # The pinned container keeps the deflation deferred forever.
        assert pool.deflation_target_mb == pytest.approx(50.0)
        assert pool.deflation_deferred_mb == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Quota victim selection through the lazy index (no materialized sort)
# ----------------------------------------------------------------------


class TestQuotaSelectionIndexed:
    def _quota_pool(self):
        pool = ContainerPool(
            1000.0, tenant_mode="quota", tenant_limits_mb={1: 100.0, 2: 500.0}
        )
        for i in range(3):
            c = Container(make_function(f"hog{i}", 100.0, tenant_id=1), 0.0)
            c.last_used_s = 50.0 + i
            pool.add(c)
        for i in range(4):
            c = Container(make_function(f"q{i}", 100.0, tenant_id=2), 0.0)
            c.last_used_s = float(i)
            pool.add(c)
        return pool

    def test_monotone_quota_selection_never_materializes_idle_set(
        self, monkeypatch
    ):
        """Regression: the GD quota branch must run through
        ``iter_victims``; grabbing + sorting the idle set is the
        scaling bottleneck the lazy index exists to avoid."""
        pool = self._quota_pool()
        policy = create_policy("GD")
        assert policy.monotone_priority

        def boom():
            raise AssertionError(
                "quota selection materialized the idle set"
            )

        monkeypatch.setattr(pool, "idle_containers", boom)
        # 300 MB free + a 500 MB request: 200 MB deficit to reclaim.
        victims = policy.select_victims_tenant(pool, 500.0, 200.0, 2)
        assert victims is not None and len(victims) == 2
        # Over-quota tenant 1 is preferred despite higher recency.
        assert {c.function.tenant_id for c in victims} == {1}

    def test_indexed_path_matches_forced_sort_path(self, monkeypatch):
        for needed, tenant in ((500.0, 2), (400.0, 2), (650.0, 1)):
            indexed_pool = self._quota_pool()
            sorted_pool = self._quota_pool()
            indexed_policy = create_policy("GD")
            sorted_policy = create_policy("GD")
            monkeypatch.setattr(
                type(sorted_policy), "monotone_priority", False
            )
            a = indexed_policy.select_victims_tenant(
                indexed_pool, needed, 100.0, tenant
            )
            b = sorted_policy.select_victims_tenant(
                sorted_pool, needed, 100.0, tenant
            )
            names = lambda vs: None if vs is None else [
                c.function.name for c in vs
            ]
            assert names(a) == names(b)


# ----------------------------------------------------------------------
# Load-balancer draining + the harvest-era policies
# ----------------------------------------------------------------------


class TestDrainingBalancers:
    @pytest.mark.parametrize(
        "name",
        [
            "random",
            "round-robin",
            "least-loaded",
            "hash-affinity",
            "affinity-spillover",
            "min-worker-set",
            "join-shortest-queue",
        ],
    )
    def test_draining_server_gets_no_new_placements(self, name):
        balancer = create_balancer(name, 3)
        balancer.mark_draining(1)
        used = [0.0, 0.0, 0.0]
        for i in range(60):
            assert balancer.route(f"fn-{i}", used) != 1

    def test_all_draining_raises(self):
        balancer = create_balancer("least-loaded", 2)
        balancer.mark_draining(0)
        balancer.mark_draining(1)
        with pytest.raises(NoHealthyServers):
            balancer.route("f", [0.0, 0.0])

    def test_mark_up_clears_draining(self):
        balancer = create_balancer("round-robin", 2)
        balancer.mark_draining(0)
        balancer.mark_up(0)
        assert balancer.draining_servers == set()
        assert 0 in {balancer.route("f", [0.0, 0.0]) for __ in range(4)}

    def test_min_worker_set_packs_lowest_index(self):
        balancer = create_balancer(
            "min-worker-set", 3, server_capacity_mb=1000.0,
            high_watermark=0.8,
        )
        assert balancer.route("f", [0.0, 0.0, 0.0]) == 0
        assert balancer.route("f", [500.0, 0.0, 0.0]) == 0
        # Server 0 over the watermark: the working set grows by one.
        assert balancer.route("f", [900.0, 0.0, 0.0]) == 1
        # Everyone saturated: least-loaded absorbs the overflow.
        assert balancer.route("f", [900.0, 950.0, 850.0]) == 2

    def test_join_shortest_queue_uses_queue_signal(self):
        balancer = create_balancer("join-shortest-queue", 3)
        assert balancer.load_signal == "queue"
        assert balancer.route("f", [2.0, 0.0, 1.0]) == 1
        assert balancer.route("f", [1.0, 1.0, 1.0]) == 0  # lowest index

    def test_draining_cluster_server_finishes_inflight_work(self):
        """Satellite contract: between notice and eviction a draining
        server receives no *new* placements but its in-flight
        invocations (incl. retries) still run on it."""
        functions = [make_function("only", 100.0)]
        invocations = [Invocation(float(t), "only") for t in range(200)]
        trace = Trace(functions, invocations, name="drain-probe")
        spec = FaultSpec(
            seed=1,
            capacity_steps=(),
            spot_mtbf_s=0.0,
        )
        sink = RingBufferSink(capacity=100_000)
        sim = ClusterSimulator(
            trace,
            "round-robin",
            num_servers=2,
            server_memory_mb=1024.0,
            tracer=Tracer(sink),
            fault_spec=None,
        )
        # Drive the notice by hand mid-run is awkward; instead mark the
        # balancer draining up front and replay: server 0 must never
        # appear in a routing decision, yet stays alive (no failure).
        sim.balancer.mark_draining(0)
        sim.run()
        routed = [
            e["server"] for e in sink if e["event"] == "invocation_routed"
        ]
        assert routed and all(server == 1 for server in routed)
        assert not sim.servers[0].is_down  # alive, just not placeable

    def test_spot_notice_stops_routing_before_eviction(self):
        trace = harvest_day_trace(duration_s=900.0)
        spec = FaultSpec(
            seed=21,
            capacity_steps=(
                CapacityStep(server=0, time_s=1e9, capacity_frac=1.0),
            ),
            spot_mtbf_s=0.0,
        )
        # Build a spec whose only capacity activity is a pinned
        # notice/evict pair on server 0 via explicit downtimes instead:
        # simplest deterministic probe is the model's own spot stream.
        spec = FaultSpec(seed=4, spot_mtbf_s=400.0, spot_notice_s=60.0)
        pairs = FaultModel(spec).spot_evictions(0, trace.duration_s)
        assert pairs, "seed must yield at least one eviction in-horizon"
        notice_s, evict_s = pairs[0]
        sink = RingBufferSink(capacity=1_000_000)
        ClusterSimulator(
            trace,
            "least-loaded",
            num_servers=2,
            server_memory_mb=4096.0,
            tracer=Tracer(sink),
            fault_spec=spec,
        ).run()
        in_window = [
            e
            for e in sink
            if e["event"] == "invocation_routed"
            and notice_s < e["time_s"] <= evict_s
            and e["server"] == 0
        ]
        assert in_window == []
        notices = [
            e
            for e in sink
            if e["event"] == "eviction_notice" and e["server"] == 0
        ]
        assert notices
        assert notices[0]["evict_at_s"] == pytest.approx(evict_s)


# ----------------------------------------------------------------------
# Scheduler integration: shrink, defer, resume, observability
# ----------------------------------------------------------------------


class TestSchedulerHarvest:
    def _simulator(self, sink=None, memory_mb=1000.0):
        functions = [make_function(f"f{i}", 100.0) for i in range(8)]
        invocations = [
            Invocation(float(i), f"f{i}") for i in range(8)
        ] + [Invocation(100.0 + i, f"f{i}") for i in range(8)]
        trace = Trace(functions, invocations, name="harvest-probe")
        tracer = Tracer(sink) if sink is not None else None
        return KeepAliveSimulator(
            trace, create_policy("GD"), memory_mb, tracer=tracer
        )

    def test_shrink_emits_events_and_counters(self):
        sink = RingBufferSink()
        sim = self._simulator(sink)
        for i in range(8):
            sim.process_invocation(sim.trace.functions[f"f{i}"], float(i))
        sim._release_finished(50.0)
        sim.set_harvest_capacity(50.0, 0.5)
        assert sim.pool.capacity_mb == pytest.approx(500.0)
        assert sim.metrics.capacity_shrinks == 1
        assert sim.metrics.deflations >= 3
        shrunk = [e for e in sink if e["event"] == "capacity_shrunk"]
        assert shrunk and shrunk[0]["new_mb"] == pytest.approx(500.0)
        deflated = [e for e in sink if e["event"] == "container_deflated"]
        assert len(deflated) == sim.metrics.deflations
        # Growth back to nominal.
        sim.set_harvest_capacity(60.0, 1.0)
        assert sim.metrics.capacity_grows == 1
        assert sim.pool.capacity_mb == pytest.approx(1000.0)

    def test_same_fraction_emits_nothing(self):
        sim = self._simulator()
        sim.set_harvest_capacity(10.0, 1.0)
        assert sim.metrics.capacity_shrinks == 0
        assert sim.metrics.capacity_grows == 0

    def test_deferred_shrink_resumes_on_release(self):
        sink = RingBufferSink()
        sim = self._simulator(sink)
        f0 = sim.trace.functions["f0"]
        sim.process_invocation(f0, 0.0)  # cold start: busy until ~1.1
        sim.set_harvest_capacity(0.5, 0.5)
        # 100 MB busy fits under the 500 MB target: settles at once.
        assert sim.pool.deflation_target_mb is None
        assert sim.pool.capacity_mb == pytest.approx(500.0)
        # A genuinely-over-target deferral:
        sim2 = self._simulator(memory_mb=200.0)
        sim2.process_invocation(sim2.trace.functions["f0"], 0.0)
        sim2.process_invocation(sim2.trace.functions["f1"], 0.2)
        sim2.set_harvest_capacity(0.5, 0.5)  # target 100, busy 200
        assert sim2.pool.deflation_target_mb == pytest.approx(100.0)
        assert sim2.pool.deflation_deferred_mb == pytest.approx(100.0)
        before = sim2.metrics.deflations
        sim2._release_finished(50.0)  # both finished long before
        assert sim2.metrics.deflations == before + 1
        assert sim2.pool.deflation_target_mb is None
        assert sim2.pool.capacity_mb == pytest.approx(100.0)

    def test_notice_eviction_counts_and_emits(self):
        sink = RingBufferSink()
        sim = self._simulator(sink)
        sim.notice_eviction(10.0, evict_at_s=40.0)
        assert sim.metrics.eviction_notices == 1
        events = [e for e in sink if e["event"] == "eviction_notice"]
        assert events and events[0]["notice_s"] == pytest.approx(30.0)

    def test_harvest_day_end_to_end_without_capacity_errors(self):
        trace = harvest_day_trace(duration_s=1800.0)
        spec = FaultSpec(
            seed=7,
            harvest_interval_s=300.0,
            harvest_min_frac=0.5,
            harvest_max_frac=0.95,
            spot_mtbf_s=1500.0,
            spot_notice_s=30.0,
        )
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 6144.0, fault_spec=spec
        )
        result = sim.run()  # CapacityError would propagate
        metrics = result.metrics
        assert metrics.capacity_shrinks > 0
        assert metrics.capacity_grows > 0
        assert metrics.deflations > 0

    def test_cluster_spec_strips_capacity_fields(self):
        spec = FaultSpec(
            seed=1,
            harvest_interval_s=100.0,
            spot_mtbf_s=500.0,
            crash_rate=0.01,
        )
        stripped = _server_level_spec(spec)
        assert stripped is not None
        assert stripped.harvest_interval_s == 0.0
        assert stripped.spot_mtbf_s == 0.0
        assert stripped.capacity_steps == ()
        assert stripped.crash_rate == 0.01
        harvest_only = FaultSpec(seed=1, harvest_interval_s=100.0)
        assert _server_level_spec(harvest_only) is None


# ----------------------------------------------------------------------
# Determinism: cross-hash-seed subprocesses and batching independence
# ----------------------------------------------------------------------

_SUBPROCESS_SCRIPT = """
import json
from repro.core.policies.base import create_policy
from repro.faults import FaultSpec
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.synth import harvest_day_trace

trace = harvest_day_trace(duration_s=1200.0)
spec = FaultSpec(
    seed=7,
    harvest_interval_s=240.0,
    harvest_min_frac=0.5,
    spot_mtbf_s=900.0,
    spot_notice_s=30.0,
)
sim = KeepAliveSimulator(trace, create_policy("GD"), 4096.0, fault_spec=spec)
metrics = sim.run().metrics
print(json.dumps(dict(sorted(metrics.counters().items()))))
"""


def _harvest_counters_with_hashseed(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_harvest_replay_stable_across_hash_seeds():
    a = _harvest_counters_with_hashseed("0")
    b = _harvest_counters_with_hashseed("4242")
    assert a == b
    assert a["capacity_shrinks"] > 0 or a["deflations"] > 0


class TestBatchingIndependence:
    """Deflating in chunks must land in the same state as one shot.

    The randomized differential of the satellite checklist: for random
    pools and random shrink targets, stepping the capacity down through
    intermediate fractions (chunked eviction) must leave exactly the
    same surviving containers and final capacity as deflating straight
    to the final target — the victim order is a total order, so any
    batching walks the same prefix of it.
    """

    def _random_pool(self, rng):
        count = rng.randint(4, 24)
        pool = ContainerPool(4096.0)
        for i in range(count):
            memory = rng.choice([64.0, 128.0, 256.0])
            c = Container(make_function(f"f{i}", memory), 0.0)
            c.last_used_s = rng.uniform(0.0, 1000.0)
            if pool.free_mb >= memory:
                pool.add(c)
        return pool

    @staticmethod
    def _fingerprint(pool):
        # Function names, not container ids: the id counter is global,
        # so two otherwise-identical pool builds get different ids.
        survivors = sorted(
            c.function.name for c in pool.idle_containers()
        )
        return (survivors, round(pool.capacity_mb, 6))

    def test_chunked_equals_one_shot(self):
        rng = random.Random(20260808)
        for trial in range(25):
            seed = rng.randrange(1 << 30)
            target_frac = rng.uniform(0.2, 0.9)
            steps = sorted(
                (rng.uniform(target_frac, 1.0) for __ in range(3)),
                reverse=True,
            )

            def build(seed=seed):
                return self._random_pool(random.Random(seed))

            one_shot = build()
            one_shot.deflate_to(4096.0 * target_frac, _key_of)
            chunked = build()
            for frac in steps:
                chunked.deflate_to(4096.0 * frac, _key_of)
            chunked.deflate_to(4096.0 * target_frac, _key_of)
            assert self._fingerprint(chunked) == self._fingerprint(
                one_shot
            ), f"trial {trial}: batching changed the deflation outcome"

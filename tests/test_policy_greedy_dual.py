"""Unit tests for the Greedy-Dual-Size-Frequency policy (Equation 1)."""

import pytest

from repro.core.container import Container
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.core.pool import ContainerPool
from tests.conftest import make_function


def start_cold(policy, pool, function, now):
    """Simulate the scheduler's cold-start sequence for one invocation."""
    policy.on_invocation(function, now)
    container = Container(function, now)
    pool.add(container)
    container.start_invocation(now, function.cold_time_s)
    policy.on_cold_start(container, now, pool)
    container.finish_invocation(now + function.cold_time_s)
    return container


def hit(policy, pool, container, now):
    function = container.function
    policy.on_invocation(function, now)
    container.start_invocation(now, function.warm_time_s)
    policy.on_warm_start(container, now, pool)
    container.finish_invocation(now + function.warm_time_s)


class TestPriorityFormula:
    def test_priority_is_clock_plus_value(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        c = start_cold(policy, pool, f, now=0.0)
        # clock=0, freq=1, cost=2, size=100
        assert c.priority == pytest.approx(0.0 + 1 * 2.0 / 100.0)

    def test_frequency_raises_priority(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        c = start_cold(policy, pool, f, now=0.0)
        p1 = c.priority
        hit(policy, pool, c, now=10.0)
        assert c.priority == pytest.approx(2 * p1)

    def test_larger_size_lowers_priority(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        small = make_function("S", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        large = make_function("L", memory_mb=1000.0, warm_time_s=1.0, cold_time_s=3.0)
        cs = start_cold(policy, pool, small, now=0.0)
        cl = start_cold(policy, pool, large, now=0.0)
        assert cs.priority > cl.priority

    def test_higher_cost_raises_priority(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        cheap = make_function("C", memory_mb=100.0, warm_time_s=1.0, cold_time_s=1.5)
        dear = make_function("D", memory_mb=100.0, warm_time_s=1.0, cold_time_s=9.0)
        cc = start_cold(policy, pool, cheap, now=0.0)
        cd = start_cold(policy, pool, dear, now=0.0)
        assert cd.priority > cc.priority

    def test_all_containers_of_function_share_value_term(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        c1 = start_cold(policy, pool, f, now=0.0)
        c2 = start_cold(policy, pool, f, now=1.0)  # concurrent second container
        # freq is now 2 for both; stamps both 0 (no evictions yet).
        assert c1.priority == pytest.approx(c2.priority)


class TestClockSemantics:
    def test_clock_starts_at_zero_and_only_advances_on_eviction(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        start_cold(policy, pool, f, now=0.0)
        assert policy.clock.value == 0.0  # hits/misses don't move it

    def test_eviction_advances_clock_to_victim_priority(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(200.0)
        a = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        b = make_function("B", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        big = make_function("BIG", memory_mb=200.0, warm_time_s=1.0, cold_time_s=2.0)
        ca = start_cold(policy, pool, a, now=0.0)
        cb = start_cold(policy, pool, b, now=2.0)
        policy.on_invocation(big, 10.0)
        victims = policy.select_victims(pool, big.memory_mb, 10.0)
        assert victims is not None and len(victims) == 2
        max_priority = max(v.priority for v in victims)
        for v in victims:
            pool.evict(v)
            policy.on_evict(v, 10.0, pool, pressure=True)
        assert policy.clock.value == pytest.approx(max_priority)

    def test_recently_used_containers_outlive_clock_advance(self):
        """After evictions raise the clock, fresh containers stamp higher."""
        policy = GreedyDualPolicy()
        pool = ContainerPool(300.0)
        f1 = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        f2 = make_function("B", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        f3 = make_function("C", memory_mb=200.0, warm_time_s=1.0, cold_time_s=2.0)
        c1 = start_cold(policy, pool, f1, now=0.0)
        c2 = start_cold(policy, pool, f2, now=1.0)
        # Evict to fit C: both A and B are candidates; one dies.
        policy.on_invocation(f3, 5.0)
        victims = policy.select_victims(pool, f3.memory_mb, 5.0)
        for v in victims:
            pool.evict(v)
            policy.on_evict(v, 5.0, pool, pressure=True)
        c3 = start_cold(policy, pool, f3, now=5.0)
        assert c3.clock_stamp == policy.clock.value
        assert c3.clock_stamp > 0.0


class TestFrequencyLifecycle:
    def test_frequency_resets_when_last_container_dies(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        c = start_cold(policy, pool, f, now=0.0)
        hit(policy, pool, c, now=1.0)
        assert policy.frequency_of("A") == 2
        pool.evict(c)
        policy.on_evict(c, 2.0, pool, pressure=True)
        assert policy.frequency_of("A") == 0

    def test_frequency_kept_while_peers_remain(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        c1 = start_cold(policy, pool, f, now=0.0)
        c2 = start_cold(policy, pool, f, now=0.5)
        pool.evict(c1)
        policy.on_evict(c1, 1.0, pool, pressure=True)
        assert policy.frequency_of("A") == 2


class TestVictimSelection:
    def test_returns_empty_when_space_is_free(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(1000.0)
        assert policy.select_victims(pool, 500.0, 0.0) == []

    def test_returns_none_when_unsatisfiable(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(300.0)
        f = make_function("A", memory_mb=200.0)
        c = Container(f, 0.0)
        pool.add(c)
        c.start_invocation(0.0, 100.0)  # running: not evictable
        assert policy.select_victims(pool, 200.0, 1.0) is None

    def test_evicts_lowest_priority_first(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(300.0)
        # B has a much higher cost: A should be the victim.
        a = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=1.1)
        b = make_function("B", memory_mb=100.0, warm_time_s=1.0, cold_time_s=9.0)
        ca = start_cold(policy, pool, a, now=0.0)
        cb = start_cold(policy, pool, b, now=0.0)
        victims = policy.select_victims(pool, 150.0, 5.0)
        assert victims == [ca]

    def test_weights_allow_lru_degeneration(self):
        """Zeroing the value weights reduces GD to pure clock order."""
        policy = GreedyDualPolicy(frequency_weight=0.0)
        pool = ContainerPool(10_000.0)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=5.0)
        c = start_cold(policy, pool, f, now=0.0)
        assert c.priority == pytest.approx(0.0)

    def test_reset_clears_clock_and_frequencies(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        start_cold(policy, pool, f, now=0.0)
        policy.clock.advance_to(5.0)
        policy.reset()
        assert policy.clock.value == 0.0
        assert policy.frequency_of("A") == 0


class TestArrivalRefresh:
    """Regression: every Freq-changing path must refresh the cached
    priorities of the function's resident containers. Arrivals that
    drop or shed before any start hook runs used to leave siblings
    scored with the pre-arrival frequency."""

    def _value(self, policy, function):
        """Equation 1's Freq*Cost/Size with default weights."""
        return (
            policy.frequency_of(function.name)
            * function.init_time_s
            / function.memory_mb
        )

    def test_pool_aware_arrival_refreshes_residents(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        c1 = start_cold(policy, pool, f, now=0.0)
        c2 = start_cold(policy, pool, f, now=1.0)
        # An arrival announced to the policy that never reaches a
        # start hook (the scheduler drops or sheds it):
        policy.on_invocation(f, 2.0, pool)
        value = self._value(policy, f)
        assert c1.priority == c1.clock_stamp + value
        assert c2.priority == c2.clock_stamp + value

    def test_evicting_last_container_resets_then_rescoring_is_fresh(self):
        policy = GreedyDualPolicy()
        pool = ContainerPool(10_000.0)
        fa = make_function("A")
        fb = make_function("B")
        a1 = start_cold(policy, pool, fa, now=0.0)
        a2 = start_cold(policy, pool, fa, now=1.0)
        b = start_cold(policy, pool, fb, now=2.0)
        hit(policy, pool, b, now=3.0)
        # Evict A's containers one by one under pressure; the second
        # is the function's last, which resets A's frequency.
        for victim in (a1, a2):
            pool.evict(victim)
            policy.on_evict(victim, 10.0, pool, pressure=True)
        assert policy.frequency_of("A") == 0
        # The surviving sibling function's cached priority still
        # matches its own (unreset) frequency exactly.
        assert b.priority == b.clock_stamp + self._value(policy, fb)
        # A's next arrival scores from the fresh count, not the stale
        # pre-reset frequency.
        a3 = start_cold(policy, pool, fa, now=20.0)
        assert policy.frequency_of("A") == 1
        assert a3.priority == a3.clock_stamp + self._value(policy, fa)

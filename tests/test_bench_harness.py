"""Smoke tests for the pinned-seed benchmark harness (repro.bench).

The full suite replays ~100k invocations per scenario; here every
scenario runs at a tiny ``--scale`` so CI proves the harness end to
end — workload construction, timing, fingerprinting, baseline
comparison, and the CLI wrapper — in seconds.
"""

import json
import subprocess
import sys
import pathlib

import pytest

from repro.bench import (
    SCENARIOS,
    churn_trace,
    compare_reports,
    eviction_trace,
    run_suite,
)

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestWorkloadBuilders:
    def test_churn_trace_is_seed_deterministic(self):
        a = churn_trace(num_functions=30, duration_s=600.0, seed=5)
        b = churn_trace(num_functions=30, duration_s=600.0, seed=5)
        assert [(i.time_s, i.function_name) for i in a.invocations] == [
            (i.time_s, i.function_name) for i in b.invocations
        ]

    def test_churn_trace_seed_matters(self):
        a = churn_trace(num_functions=30, duration_s=600.0, seed=5)
        b = churn_trace(num_functions=30, duration_s=600.0, seed=6)
        assert [(i.time_s, i.function_name) for i in a.invocations] != [
            (i.time_s, i.function_name) for i in b.invocations
        ]

    def test_eviction_trace_shape(self):
        trace = eviction_trace(num_functions=20, rounds=3)
        assert len(trace) == 60
        times = [i.time_s for i in trace.invocations]
        assert times == sorted(times)


class TestRunSuite:
    @pytest.fixture(scope="class")
    def report(self):
        return run_suite(repeats=1, scale=0.02)

    def test_covers_every_scenario(self, report):
        assert set(report["scenarios"]) == {s.name for s in SCENARIOS}

    def test_entries_are_complete(self, report):
        for entry in report["scenarios"].values():
            assert entry["invocations"] > 0
            assert entry["best_s"] > 0.0
            assert len(entry["fingerprint"]) == 64

    def test_fingerprints_reproduce(self, report):
        again = run_suite(repeats=1, scale=0.02)
        for name, entry in report["scenarios"].items():
            assert entry["fingerprint"] == again["scenarios"][name]["fingerprint"]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_suite(repeats=0)
        with pytest.raises(ValueError):
            run_suite(scale=0.0)


class TestCompareReports:
    def base(self):
        return {
            "scale": 1.0,
            "calibration_s": 1.0,
            "scenarios": {
                "ttl": {"best_s": 1.0, "fingerprint": "a" * 64},
            },
        }

    def test_identical_passes(self):
        assert compare_reports(self.base(), self.base()) == []

    def test_slowdown_fails(self):
        current = self.base()
        current["scenarios"]["ttl"]["best_s"] = 1.5
        failures = compare_reports(current, self.base(), tolerance=0.10)
        assert len(failures) == 1
        assert "slowdown" in failures[0]

    def test_slowdown_normalized_by_calibration(self):
        # Same nominal slowdown, but the machine is 2x slower overall:
        # the calibration ratio absorbs it.
        current = self.base()
        current["scenarios"]["ttl"]["best_s"] = 1.5
        current["calibration_s"] = 2.0
        assert compare_reports(current, self.base(), tolerance=0.10) == []

    def test_metrics_drift_fails(self):
        current = self.base()
        current["scenarios"]["ttl"]["fingerprint"] = "b" * 64
        failures = compare_reports(current, self.base())
        assert len(failures) == 1
        assert "drift" in failures[0]

    def test_drift_ignored_across_scales(self):
        # A smoke run at a different scale replays a different
        # workload; only the timing gate applies then.
        current = self.base()
        current["scale"] = 0.05
        current["scenarios"]["ttl"]["fingerprint"] = "b" * 64
        assert compare_reports(current, self.base()) == []

    def test_missing_scenario_fails(self):
        current = self.base()
        del current["scenarios"]["ttl"]
        failures = compare_reports(current, self.base())
        assert len(failures) == 1
        assert "missing" in failures[0]


class TestCliWrapper:
    def test_run_bench_script(self, tmp_path):
        out = tmp_path / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "benchmarks" / "run_bench.py"),
                "--out", str(out),
                "--repeats", "1",
                "--scale", "0.02",
                "--scenario", "sweep_cell",
            ],
            env={"PYTHONPATH": str(REPO / "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert list(report["scenarios"]) == ["sweep_cell"]

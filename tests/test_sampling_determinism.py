"""Regression tests: trace sampling must be seed-deterministic.

``representative_sample`` used to rebuild ``set(sample)`` per
comprehension element (the live FC003 instance this suite pins down);
beyond same-process equality, the subprocess test asserts the samples
are identical under different ``PYTHONHASHSEED`` values — the
environment knob that exposes any set-iteration-order dependence.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import (
    random_sample,
    rare_sample,
    representative_sample,
)

REPO = pathlib.Path(__file__).resolve().parents[1]


def small_dataset(seed=7):
    config = AzureGeneratorConfig(
        num_functions=80, max_daily_invocations=2000
    )
    return generate_azure_dataset(config, seed=seed)


@pytest.mark.parametrize(
    "sampler", [representative_sample, rare_sample, random_sample]
)
def test_same_seed_same_sample(sampler):
    dataset = small_dataset()
    first = sampler(dataset, n=40, seed=3)
    second = sampler(dataset, n=40, seed=3)
    assert first == second
    assert len(first) > 0


def test_representative_topup_is_deterministic():
    # n much larger than any quartile forces the top-up branch that
    # used to rebuild the membership set per element.
    dataset = small_dataset()
    first = representative_sample(dataset, n=70, seed=5)
    second = representative_sample(dataset, n=70, seed=5)
    assert first == second
    assert len(first) == len(set(first)), "sample must not repeat ids"


_SUBPROCESS_SCRIPT = """
import json
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import representative_sample

config = AzureGeneratorConfig(num_functions=80, max_daily_invocations=2000)
dataset = generate_azure_dataset(config, seed=7)
print(json.dumps(representative_sample(dataset, n=70, seed=5)))
"""


def _sample_with_hashseed(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_sample_stable_across_hash_seeds():
    assert _sample_with_hashseed("0") == _sample_with_hashseed("4242")

"""Unit tests for the core primitives: clock, container, function stats."""

import pytest

from repro.core.clock import LogicalClock
from repro.core.container import Container, ContainerState
from repro.core.function import FunctionStats, FunctionStatsTable
from tests.conftest import make_function


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().value == 0.0

    def test_advance_forward(self):
        clock = LogicalClock()
        clock.advance_to(3.5)
        assert clock.value == 3.5

    def test_never_moves_backwards(self):
        clock = LogicalClock(initial=10.0)
        clock.advance_to(5.0)
        assert clock.value == 10.0

    def test_reset(self):
        clock = LogicalClock(initial=10.0)
        clock.reset()
        assert clock.value == 0.0

    def test_monotone_under_mixed_updates(self):
        clock = LogicalClock()
        values = [1.0, 0.5, 2.0, 1.5, 3.0]
        seen = []
        for v in values:
            clock.advance_to(v)
            seen.append(clock.value)
        assert seen == sorted(seen)


class TestContainer:
    def test_new_container_is_warm(self):
        c = Container(make_function(), created_at_s=5.0)
        assert c.state == ContainerState.WARM
        assert c.is_idle
        assert not c.is_running

    def test_unique_ids(self):
        f = make_function()
        a, b = Container(f, 0.0), Container(f, 0.0)
        assert a.container_id != b.container_id

    def test_start_and_finish_invocation(self):
        c = Container(make_function(), 0.0)
        c.start_invocation(10.0, duration_s=3.0)
        assert c.is_running
        assert c.busy_until_s == pytest.approx(13.0)
        assert c.invocation_count == 1
        c.finish_invocation(13.0)
        assert c.is_idle
        assert c.last_used_s == pytest.approx(13.0)

    def test_cannot_start_while_running(self):
        c = Container(make_function(), 0.0)
        c.start_invocation(0.0, 5.0)
        with pytest.raises(RuntimeError):
            c.start_invocation(1.0, 5.0)

    def test_cannot_finish_idle(self):
        c = Container(make_function(), 0.0)
        with pytest.raises(RuntimeError):
            c.finish_invocation(1.0)

    def test_cannot_terminate_running(self):
        c = Container(make_function(), 0.0)
        c.start_invocation(0.0, 5.0)
        with pytest.raises(RuntimeError):
            c.terminate()

    def test_terminate_idle(self):
        c = Container(make_function(), 0.0)
        c.terminate()
        assert c.state == ContainerState.DEAD

    def test_cannot_start_after_termination(self):
        c = Container(make_function(), 0.0)
        c.terminate()
        with pytest.raises(RuntimeError):
            c.start_invocation(1.0, 1.0)

    def test_idle_time(self):
        c = Container(make_function(), 0.0)
        c.start_invocation(0.0, 2.0)
        c.finish_invocation(2.0)
        assert c.idle_time_s(10.0) == pytest.approx(8.0)

    def test_memory_comes_from_function(self):
        c = Container(make_function(memory_mb=333.0), 0.0)
        assert c.memory_mb == 333.0


class TestFunctionStats:
    def test_cold_observation_sets_worst_case(self):
        s = FunctionStats("f")
        s.observe_cold(4.0)
        assert s.cold_time_s == 4.0
        assert s.init_time_s == 4.0  # worst case until a warm run
        s.observe_cold(6.0)
        assert s.cold_time_s == 6.0
        s.observe_cold(5.0)
        assert s.cold_time_s == 6.0  # keeps the max

    def test_init_time_after_warm_observation(self):
        s = FunctionStats("f")
        s.observe_cold(5.0)
        s.observe_warm(2.0)
        assert s.init_time_s == pytest.approx(3.0)

    def test_warm_smoothing(self):
        s = FunctionStats("f")
        s.observe_warm(1.0)
        s.observe_warm(2.0)
        assert 1.0 < s.warm_time_s < 2.0

    def test_init_time_never_negative(self):
        s = FunctionStats("f")
        s.observe_cold(1.0)
        s.observe_warm(5.0)
        assert s.init_time_s == 0.0

    def test_init_time_without_observations(self):
        assert FunctionStats("f").init_time_s == 0.0

    def test_frequency_cycle(self):
        s = FunctionStats("f")
        assert s.record_invocation() == 1
        assert s.record_invocation() == 2
        s.reset_frequency()
        assert s.frequency == 0

    def test_reset_frequency_keeps_learned_times(self):
        s = FunctionStats("f")
        s.observe_cold(5.0)
        s.observe_warm(2.0)
        s.record_invocation()
        s.reset_frequency()
        assert s.init_time_s == pytest.approx(3.0)

    def test_counters(self):
        s = FunctionStats("f")
        s.observe_cold(3.0)
        s.observe_warm(1.0)
        assert s.total_invocations == 2
        assert s.total_cold_starts == 1


class TestFunctionStatsTable:
    def test_get_creates_on_first_use(self):
        table = FunctionStatsTable()
        assert "f" not in table
        stats = table.get("f")
        assert stats.name == "f"
        assert "f" in table
        assert table.get("f") is stats

    def test_len_and_reset(self):
        table = FunctionStatsTable()
        table.get("a")
        table.get("b")
        assert len(table) == 2
        table.reset()
        assert len(table) == 0

    def test_items(self):
        table = FunctionStatsTable()
        table.get("a")
        assert dict(table.items())["a"].name == "a"

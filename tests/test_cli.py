"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def small_trace_file(tmp_path):
    path = tmp_path / "trace.json"
    code = main(
        [
            "generate",
            "--functions", "150",
            "--max-daily-invocations", "500",
            "--sample", "representative",
            "--sample-size", "40",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in (
            ["generate", "--out", "x.json"],
            ["simulate", "--trace", "t"],
            ["sweep", "--trace", "t", "--memory-gb", "1"],
            ["provision", "--trace", "t"],
            ["autoscale", "--trace", "t"],
            ["loadtest"],
            ["serve", "--trace", "t"],
            ["loadgen", "--trace", "t"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestGenerate:
    def test_writes_loadable_trace(self, small_trace_file):
        from repro.traces.io import load_trace_json

        trace = load_trace_json(small_trace_file)
        assert trace.num_functions <= 40
        assert len(trace) > 0

    def test_full_sample(self, tmp_path):
        out = tmp_path / "full.json"
        code = main(
            [
                "generate",
                "--functions", "60",
                "--max-daily-invocations", "200",
                "--sample", "full",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()


class TestCommands:
    def test_simulate(self, small_trace_file, capsys):
        code = main(
            [
                "simulate",
                "--trace", str(small_trace_file),
                "--policy", "GD",
                "--memory-gb", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warm_starts" in out
        assert "GD" in out

    def test_simulate_builtin_workload(self, capsys):
        code = main(
            ["simulate", "--trace", "cyclic", "--policy", "LRU",
             "--memory-gb", "2"]
        )
        assert code == 0
        assert "LRU" in capsys.readouterr().out

    def test_sweep(self, small_trace_file, capsys):
        code = main(
            [
                "sweep",
                "--trace", str(small_trace_file),
                "--memory-gb", "2", "4",
                "--policies", "GD", "TTL",
                "--metric", "cold_start_pct",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GD" in out and "TTL" in out
        assert "cold_start_pct" in out

    def test_provision(self, small_trace_file, capsys):
        code = main(["provision", "--trace", str(small_trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "working set" in out
        assert "inflection" in out

    def test_autoscale(self, small_trace_file, capsys):
        code = main(
            [
                "autoscale",
                "--trace", str(small_trace_file),
                "--miss-ratio", "0.1",
                "--period-s", "1200",
            ]
        )
        assert code == 0
        assert "Saving" in capsys.readouterr().out

    def test_loadtest(self, capsys):
        code = main(
            ["loadtest", "--workload", "cyclic", "--memory-gb", "1.625"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OpenWhisk" in out and "FaasCache" in out


class TestNewCommands:
    def test_characterize(self, small_trace_file, capsys):
        code = main(["characterize", "--trace", str(small_trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "popularity Gini" in out
        assert "diurnal peak/mean" in out

    def test_characterize_builtin(self, capsys):
        code = main(["characterize", "--trace", "skewed-size"])
        assert code == 0
        assert "functions" in capsys.readouterr().out

    def test_balancers(self, small_trace_file, capsys):
        code = main(
            [
                "balancers",
                "--trace", str(small_trace_file),
                "--servers", "2",
                "--server-memory-gb", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hash-affinity" in out
        assert "affinity-spillover" in out

    def test_plan(self, small_trace_file, capsys, tmp_path):
        out = tmp_path / "plan.md"
        code = main(
            ["plan", "--trace", str(small_trace_file), "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Capacity plan:")
        assert "**(recommended)**" in text

    def test_plan_stdout(self, capsys):
        code = main(["plan", "--trace", "skewed-size"])
        assert code == 0
        assert "Sizing options" in capsys.readouterr().out


class TestSweepEngineCLI:
    def test_parallel_sweep_matches_sequential_table(
        self, small_trace_file, capsys
    ):
        argv = [
            "sweep",
            "--trace", str(small_trace_file),
            "--memory-gb", "1", "2",
            "--policies", "GD", "LRU",
        ]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--workers", "2", "--quiet"]) == 0
        parallel = capsys.readouterr().out

        def table_lines(text):
            return [
                line for line in text.splitlines()
                if "cells in" not in line
            ]

        assert table_lines(parallel) == table_lines(sequential)

    def test_failed_cells_render_partial_table(
        self, small_trace_file, capsys
    ):
        code = main(
            [
                "sweep",
                "--trace", str(small_trace_file),
                "--memory-gb", "1",
                "--policies", "GD", "NOPE",
                "--workers", "2",
                "--quiet",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "GD" in captured.out  # surviving column still printed
        assert "cells FAILED" in captured.err
        assert "NOPE" in captured.err

    def test_throughput_line_printed(self, small_trace_file, capsys):
        assert main(
            [
                "sweep",
                "--trace", str(small_trace_file),
                "--memory-gb", "1",
                "--policies", "GD",
            ]
        ) == 0
        assert "invocations/s" in capsys.readouterr().out

    def test_simulate_reserve_and_warmup(self, small_trace_file, capsys):
        assert main(
            [
                "simulate",
                "--trace", str(small_trace_file),
                "--policy", "DOORKEEPER",
                "--memory-gb", "1",
                "--warmup-s", "100",
            ]
        ) == 0
        assert "invocations_per_s" in capsys.readouterr().out

    def test_malformed_reserve_rejected(self, small_trace_file):
        with pytest.raises(SystemExit, match="NAME=COUNT"):
            main(
                [
                    "simulate",
                    "--trace", str(small_trace_file),
                    "--policy", "GD",
                    "--memory-gb", "1",
                    "--reserve", "fn-00001",
                ]
            )


class TestObservabilityCLI:
    def test_trace_writes_events_and_summary(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        summary = tmp_path / "summary.json"
        code = main(
            [
                "trace",
                "--trace", "skewed-frequency",
                "--policy", "GD",
                "--memory-gb", "0.5",
                "--strict",
                "--out", str(events),
                "--summary-json", str(summary),
            ]
        )
        assert code == 0
        assert "invocations traced" in capsys.readouterr().out
        import json

        payload = json.loads(summary.read_text())
        assert payload["policy"] == "GD"
        assert set(payload["counters"]) == {
            "warm_starts", "cold_starts", "dropped",
            "evictions", "expirations", "prewarms",
            "faults_injected", "retries", "sheds", "server_downs",
            "capacity_shrinks", "capacity_grows", "eviction_notices",
            "deflations",
        }
        from repro.obs.sinks import read_jsonl_events

        assert sum(1 for __ in read_jsonl_events(events)) > 0

    def _traced_pair(self, tmp_path):
        events = tmp_path / "events.jsonl"
        summary = tmp_path / "summary.json"
        assert main(
            [
                "trace", "--trace", "skewed-frequency",
                "--policy", "GD", "--memory-gb", "0.5",
                "--out", str(events), "--summary-json", str(summary),
            ]
        ) == 0
        return events, summary

    def test_trace_report_renders(self, tmp_path, capsys):
        events, __ = self._traced_pair(tmp_path)
        assert main(["trace-report", str(events)]) == 0
        out = capsys.readouterr().out
        assert "lifecycle counters" in out
        assert "memory pressure" in out

    def test_trace_report_check_passes(self, tmp_path, capsys):
        events, summary = self._traced_pair(tmp_path)
        assert main(["trace-report", str(events), "--check",
                     str(summary)]) == 0
        assert "agrees" in capsys.readouterr().out

    def test_trace_report_check_detects_mismatch(self, tmp_path, capsys):
        import json

        events, summary = self._traced_pair(tmp_path)
        payload = json.loads(summary.read_text())
        payload["counters"]["cold_starts"] += 1
        summary.write_text(json.dumps(payload))
        assert main(["trace-report", str(events), "--check",
                     str(summary)]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_trace_report_function_timeline(self, tmp_path, capsys):
        events, __ = self._traced_pair(tmp_path)
        from repro.obs.sinks import read_jsonl_events

        name = next(iter(read_jsonl_events(events)))["function"]
        assert main(
            ["trace-report", str(events), "--function", name]
        ) == 0
        out = capsys.readouterr().out
        assert f"timeline for {name!r}" in out
        assert "invocation_arrived" in out

    def test_trace_report_unknown_function(self, tmp_path, capsys):
        events, __ = self._traced_pair(tmp_path)
        assert main(
            ["trace-report", str(events), "--function", "nope"]
        ) == 1
        assert "never appears" in capsys.readouterr().err

    def test_simulate_trace_out_and_metrics_out(self, tmp_path, capsys):
        events = tmp_path / "sim.jsonl"
        prom = tmp_path / "sim.prom"
        code = main(
            [
                "simulate", "--trace", "cyclic",
                "--policy", "GD", "--memory-gb", "1",
                "--trace-out", str(events),
                "--metrics-out", str(prom),
            ]
        )
        assert code == 0
        assert "warm_starts" in capsys.readouterr().out
        assert events.exists()
        text = prom.read_text()
        assert "faascache_invocations_total" in text

    def test_sweep_trace_dir_and_metrics_out(self, tmp_path, capsys):
        trace_dir = tmp_path / "cells"
        prom = tmp_path / "sweep.prom"
        code = main(
            [
                "sweep", "--trace", "cyclic",
                "--memory-gb", "1", "2",
                "--policies", "GD", "TTL",
                "--trace-dir", str(trace_dir),
                "--metrics-out", str(prom),
            ]
        )
        assert code == 0
        names = sorted(p.name for p in trace_dir.iterdir())
        assert names == [
            "GD_1GB.jsonl", "GD_2GB.jsonl",
            "TTL_1GB.jsonl", "TTL_2GB.jsonl",
        ]
        text = prom.read_text()
        assert 'policy="GD"' in text and 'policy="TTL"' in text
        assert 'memory_gb="2"' in text


class TestTenantMapValidation:
    """--tenant-weights/--tenant-quota must reject non-finite and
    negative values before they can corrupt priority math."""

    @pytest.mark.parametrize("bad", ["1=nan", "1=inf", "1=-inf", "1=-2.5"])
    def test_bad_weights_rejected(self, bad):
        with pytest.raises(SystemExit, match="finite and >= 0"):
            main(
                [
                    "simulate",
                    "--trace", "multitenant",
                    "--policy", "GD",
                    "--memory-gb", "1",
                    "--tenant-weights", bad,
                ]
            )

    def test_bad_quota_rejected(self):
        with pytest.raises(SystemExit, match="finite and >= 0"):
            main(
                [
                    "simulate",
                    "--trace", "multitenant",
                    "--policy", "GD",
                    "--memory-gb", "1",
                    "--tenant-mode", "quota",
                    "--tenant-quota", "1=nan",
                ]
            )

    def test_valid_weights_still_accepted(self, capsys):
        assert main(
            [
                "simulate",
                "--trace", "multitenant",
                "--policy", "GD",
                "--memory-gb", "1",
                "--tenant-weights", "1=2.0", "2=0.5",
            ]
        ) == 0
        assert "invocations_per_s" in capsys.readouterr().out

    def test_constructor_layer_rejects_nonfinite(self):
        import math

        from repro.core.policies.base import create_policy
        from repro.core.pool import ContainerPool

        with pytest.raises(ValueError, match="finite"):
            create_policy("GD", tenant_weights={1: math.nan})
        with pytest.raises(ValueError, match="finite"):
            create_policy("GD", tenant_weights={1: math.inf})
        with pytest.raises(ValueError, match="finite"):
            ContainerPool(
                1024.0,
                tenant_mode="quota",
                tenant_limits_mb={1: math.nan},
            )


class TestLiveCLI:
    def test_serve_and_loadgen_parsers(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--trace", "t", "--clock", "sim"])
        assert callable(serve.func) and serve.clock == "sim"
        loadgen = parser.parse_args(
            ["loadgen", "--trace", "t", "--mode", "openloop", "--port", "1"]
        )
        assert callable(loadgen.func) and loadgen.mode == "openloop"

    def test_loadgen_against_in_process_server(self, tmp_path, capsys):
        from repro.core.clock import SimClock
        from repro.live.server import ServerThread
        from repro.live.service import LivePoolService
        from repro.traces.synth import skewed_frequency_trace

        trace = skewed_frequency_trace(seed=31)
        service = LivePoolService(trace, "GD", 2048.0, clock=SimClock())
        thread = ServerThread(service).start()
        out = tmp_path / "loadgen.json"
        try:
            code = main(
                [
                    "loadgen",
                    "--trace", "skewed-frequency",
                    "--host", thread.host,
                    "--port", str(thread.port),
                    "--limit", "1000",
                    "--check-consistency",
                    "--max-p99-ms", "1000",
                    "--json-out", str(out),
                ]
            )
        finally:
            thread.stop()
        assert code == 0
        captured = capsys.readouterr().out
        assert "achieved qps" in captured
        assert "agrees with the client" in captured
        report = json.loads(out.read_text())
        assert report["completed"] == 1000
        assert report["statuses"] == {"200": 1000}

"""Conformance battery: every registered policy honours the contract.

Any policy in the registry — including ones added later — must uphold
the invariants the pool and simulator depend on. Each case runs
against every policy, constructing parametric ones (oracles,
doorkeeper) through the appropriate factory.
"""

import pytest

from repro.core.container import Container
from repro.core.policies import (
    EXTENDED_POLICIES,
    PAPER_POLICIES,
    available_policies,
    create_policy,
)
from repro.core.pool import ContainerPool
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_function, make_trace

ALL_SIMPLE = list(PAPER_POLICIES) + list(EXTENDED_POLICIES)
ALL_NAMES = ALL_SIMPLE + ["ORACLE", "ORACLE-CS", "DOORKEEPER"]


def build_policy(name, trace):
    if name.startswith("ORACLE"):
        return create_policy(name, trace=trace)
    if name == "DOORKEEPER":
        return create_policy(name, inner="GD")
    return create_policy(name)


@pytest.fixture(scope="module")
def battery_trace():
    return make_trace("ABCDBCADACBDDBCA" * 8, gap_s=3.0)


class TestRegistryCompleteness:
    def test_every_lineup_name_is_registered(self):
        registered = set(available_policies())
        for name in ALL_NAMES:
            assert name in registered, name


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPolicyContract:
    def test_select_victims_no_pressure_returns_empty(
        self, name, battery_trace
    ):
        policy = build_policy(name, battery_trace)
        pool = ContainerPool(10_000.0)
        assert policy.select_victims(pool, 100.0, 0.0) == []

    def test_select_victims_unsatisfiable_returns_none(
        self, name, battery_trace
    ):
        policy = build_policy(name, battery_trace)
        pool = ContainerPool(200.0)
        f = make_function("A", memory_mb=200.0)
        c = Container(f, 0.0)
        pool.add(c)
        c.start_invocation(0.0, 100.0)
        policy.on_invocation(f, 0.0)
        assert policy.select_victims(pool, 200.0, 1.0) is None

    def test_victims_are_idle_pool_members(self, name, battery_trace):
        policy = build_policy(name, battery_trace)
        pool = ContainerPool(400.0)
        containers = []
        for i, fname in enumerate("ABCD"):
            f = make_function(fname, memory_mb=100.0)
            policy.on_invocation(f, float(i))
            c = Container(f, float(i))
            pool.add(c)
            policy.on_cold_start(c, float(i), pool)
            containers.append(c)
        containers[0].start_invocation(10.0, 100.0)  # running: untouchable
        victims = policy.select_victims(pool, 250.0, 11.0)
        assert victims is not None
        assert len(set(v.container_id for v in victims)) == len(victims)
        for v in victims:
            assert v in pool
            assert v.is_idle
        assert sum(v.memory_mb for v in victims) >= 250.0 - pool.free_mb - 1e-9

    def test_full_replay_conserves_requests(self, name, battery_trace):
        policy = build_policy(name, battery_trace)
        sim = KeepAliveSimulator(battery_trace, policy, 700.0)
        result = sim.run()
        m = result.metrics
        assert m.warm_starts + m.cold_starts + m.dropped == len(battery_trace)
        assert m.actual_exec_time_s >= m.ideal_exec_time_s - 1e-9
        assert sim.pool.used_mb <= sim.pool.capacity_mb + 1e-9

    def test_reset_allows_reuse(self, name, battery_trace):
        if name == "RAND":
            # RAND's priorities hash the globally unique container ids,
            # so two runs see different coin flips by construction.
            pytest.skip("RAND is only deterministic for identical ids")
        policy = build_policy(name, battery_trace)
        first = KeepAliveSimulator(battery_trace, policy, 700.0).run().metrics
        policy.reset()
        second = KeepAliveSimulator(battery_trace, policy, 700.0).run().metrics
        assert first.summary() == second.summary()

    def test_abundant_memory_only_compulsory_misses(self, name, battery_trace):
        """With infinite memory and spaced arrivals, the only cold
        starts are compulsory — except for policies that expire or
        reject by design (TTL/HIST/DOORKEEPER)."""
        policy = build_policy(name, battery_trace)
        metrics = KeepAliveSimulator(
            battery_trace, policy, 1e9
        ).run().metrics
        unique = battery_trace.num_functions
        if name in ("TTL", "HIST", "DOORKEEPER"):
            assert metrics.cold_starts >= unique
        else:
            assert metrics.cold_starts == unique
        assert metrics.dropped == 0

"""Tests for the simulated OpenWhisk invoker substrate."""

import pytest

from repro.core.function import FunctionStatsTable
from repro.openwhisk.containerpool import (
    InvokerContainerPool,
    OnlineGreedyDualPolicy,
)
from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.openwhisk.latency import ColdStartModel
from repro.openwhisk.loadgen import (
    compare_keepalive_systems,
    faascache_invoker,
    openwhisk_invoker,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import cyclic_trace, figure8_trace
from tests.conftest import make_function


class TestColdStartModel:
    def test_cold_breakdown_phases(self):
        model = ColdStartModel()
        f = make_function(warm_time_s=1.0, cold_time_s=3.5)
        breakdown = model.cold_breakdown(f)
        phases = breakdown.as_dict()
        assert phases["explicit-init"] == pytest.approx(2.5)
        assert phases["function-execution"] == pytest.approx(1.0)
        assert breakdown.total_s == pytest.approx(
            model.platform_overhead_s + 3.5
        )

    def test_warm_breakdown_is_short(self):
        model = ColdStartModel()
        f = make_function(warm_time_s=1.0, cold_time_s=3.5)
        assert model.warm_duration_s(f) == pytest.approx(1.0 + model.pool_check_s)

    def test_overhead_excludes_execution(self):
        model = ColdStartModel()
        f = make_function(warm_time_s=1.0, cold_time_s=3.5)
        breakdown = model.cold_breakdown(f)
        assert breakdown.overhead_s == pytest.approx(breakdown.total_s - 1.0)

    def test_platform_overhead_matches_figure1_scale(self):
        # Figure 1: ~2 s of compulsory platform latency.
        assert 1.0 < ColdStartModel().platform_overhead_s < 3.0

    def test_launch_shorter_than_cold(self):
        model = ColdStartModel()
        f = make_function(warm_time_s=1.0, cold_time_s=3.5)
        assert model.launch_duration_s(f) < model.cold_duration_s(f)


class TestInvokerContainerPool:
    def make_pool(self, capacity=1000.0, threshold=0.0, **kwargs):
        stats = FunctionStatsTable()
        policy = OnlineGreedyDualPolicy(stats)
        return InvokerContainerPool(
            capacity, policy, free_threshold_mb=threshold, stats=stats, **kwargs
        )

    def test_miss_then_hit(self):
        pool = self.make_pool()
        f = make_function("A", memory_mb=100.0)
        pool.record_arrival(f, 0.0)
        container, kind = pool.acquire(f, 0.0)
        assert kind == "miss"
        container.start_invocation(0.0, 1.0)
        pool.notify_start(container, kind, 0.0)
        pool.release(container, 1.0, kind, 1.0)
        pool.record_arrival(f, 2.0)
        again, kind2 = pool.acquire(f, 2.0)
        assert kind2 == "hit"
        assert again is container

    def test_full_when_everything_running(self):
        pool = self.make_pool(capacity=100.0)
        f = make_function("A", memory_mb=100.0)
        pool.record_arrival(f, 0.0)
        c, __ = pool.acquire(f, 0.0)
        c.start_invocation(0.0, 100.0)
        pool.record_arrival(f, 1.0)
        c2, kind = pool.acquire(f, 1.0)
        assert c2 is None and kind == "full"

    def test_eviction_frees_room(self):
        pool = self.make_pool(capacity=100.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        pool.record_arrival(a, 0.0)
        ca, __ = pool.acquire(a, 0.0)
        ca.start_invocation(0.0, 1.0)
        pool.notify_start(ca, "miss", 0.0)
        pool.release(ca, 1.0, "miss", 1.0)
        pool.record_arrival(b, 2.0)
        cb, kind = pool.acquire(b, 2.0)
        assert kind == "miss"
        assert pool.evictions == 1

    def test_batched_eviction_reaches_threshold(self):
        pool = self.make_pool(capacity=400.0, threshold=300.0)
        functions = [
            make_function(f"f{i}", memory_mb=100.0) for i in range(4)
        ]
        for i, f in enumerate(functions):
            pool.record_arrival(f, float(i))
            c, __ = pool.acquire(f, float(i))
            c.start_invocation(float(i), 0.5)
            pool.notify_start(c, "miss", float(i))
            pool.release(c, float(i) + 0.5, "miss", 0.5)
        # Pool full of 4 idle containers; a new 100 MB miss triggers a
        # batch that frees up to the 300 MB threshold.
        g = make_function("g", memory_mb=100.0)
        pool.record_arrival(g, 10.0)
        c, kind = pool.acquire(g, 10.0)
        assert kind == "miss"
        assert pool.pool.free_mb >= 200.0  # 300 threshold minus g itself

    def test_eviction_latency_charged_once(self):
        pool = self.make_pool(
            capacity=100.0,
            eviction_event_latency_s=0.5,
            eviction_per_container_s=0.25,
        )
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        pool.record_arrival(a, 0.0)
        ca, __ = pool.acquire(a, 0.0)
        ca.start_invocation(0.0, 0.5)
        pool.release(ca, 0.5, "miss", 0.5)
        pool.record_arrival(b, 1.0)
        pool.acquire(b, 1.0)
        assert pool.take_eviction_latency() == pytest.approx(0.75)
        assert pool.take_eviction_latency() == 0.0  # consumed

    def test_online_gd_uses_learned_cost(self):
        stats = FunctionStatsTable()
        policy = OnlineGreedyDualPolicy(stats)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=9.0)
        policy.on_invocation(f, 0.0)
        # Before any observation the learned cost is 0.
        assert policy._value_term(f) == 0.0
        stats.get("A").observe_cold(9.0)
        assert policy._value_term(f) == pytest.approx(9.0 / 100.0)
        stats.get("A").observe_warm(1.0)
        assert policy._value_term(f) == pytest.approx(8.0 / 100.0)

    def test_expire_delegates_to_policy(self):
        from repro.core.policies.ttl import TTLPolicy

        pool = InvokerContainerPool(1000.0, TTLPolicy(ttl_s=10.0))
        f = make_function("A", memory_mb=100.0)
        pool.record_arrival(f, 0.0)
        c, __ = pool.acquire(f, 0.0)
        c.start_invocation(0.0, 1.0)
        pool.release(c, 1.0, "miss", 1.0)
        assert pool.expire(5.0) == 0
        assert pool.expire(12.0) == 1
        assert pool.expirations == 1


class TestSimulatedInvoker:
    def run_trace(self, trace, policy="TTL", **config_kwargs):
        defaults = dict(memory_mb=2048.0, cpu_cores=8)
        defaults.update(config_kwargs)
        invoker = SimulatedInvoker(InvokerConfig(**defaults), policy=policy)
        return invoker.run(trace)

    def test_single_request_is_cold(self):
        f = make_function("A", memory_mb=100.0)
        trace = Trace([f], [Invocation(0.0, "A")])
        result = self.run_trace(trace)
        assert result.cold_starts == 1
        assert result.warm_starts == 0
        record = result.records[0]
        assert record.latency_s == pytest.approx(
            ColdStartModel().cold_duration_s(f)
        )

    def test_reuse_is_warm_and_faster(self):
        f = make_function("A", memory_mb=100.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(20.0, "A")])
        result = self.run_trace(trace)
        assert result.warm_starts == 1
        warm_record = result.records[1]
        cold_record = result.records[0]
        assert warm_record.latency_s < cold_record.latency_s

    def test_cpu_saturation_queues_requests(self):
        f = make_function("A", memory_mb=10.0, warm_time_s=10.0, cold_time_s=11.0)
        invocations = [Invocation(0.0 + 0.01 * i, "A") for i in range(4)]
        trace = Trace([f], invocations)
        result = self.run_trace(trace, cpu_cores=2, max_concurrent_launches=8,
                                request_timeout_s=100.0)
        served_starts = sorted(
            r.start_s for r in result.records if r.start_s is not None
        )
        # Only two can run at once; the rest start after a completion.
        assert served_starts[2] > 1.0

    def test_queue_timeout_drops(self):
        f = make_function("A", memory_mb=10.0, warm_time_s=50.0, cold_time_s=55.0)
        invocations = [Invocation(float(i), "A") for i in range(10)]
        trace = Trace([f], invocations)
        result = self.run_trace(
            trace, cpu_cores=1, request_timeout_s=5.0,
            max_concurrent_launches=1,
        )
        assert result.dropped > 0

    def test_queue_capacity_drops_immediately(self):
        f = make_function("A", memory_mb=10.0, warm_time_s=100.0, cold_time_s=110.0)
        invocations = [Invocation(0.01 * i, "A") for i in range(20)]
        trace = Trace([f], invocations)
        result = self.run_trace(
            trace, cpu_cores=1, queue_capacity=3, request_timeout_s=1000.0,
            max_concurrent_launches=1,
        )
        assert result.dropped >= 20 - 1 - 3 - 2  # roughly: 1 running + 3 queued

    def test_launch_concurrency_bounds_cold_storms(self):
        functions = [
            make_function(f"f{i}", memory_mb=10.0, warm_time_s=0.1, cold_time_s=2.0)
            for i in range(8)
        ]
        invocations = [Invocation(0.01 * i, f"f{i}") for i in range(8)]
        trace = Trace(functions, invocations)
        result = self.run_trace(
            trace, cpu_cores=16, max_concurrent_launches=2,
            request_timeout_s=100.0,
        )
        starts = sorted(r.start_s for r in result.records)
        # With only 2 concurrent launches, the 8 cold starts stagger.
        assert starts[-1] > 1.0

    def test_per_function_accounting(self):
        trace = figure8_trace(duration_s=60.0)
        result = self.run_trace(trace, memory_mb=4096.0)
        per_fn = result.per_function()
        assert set(per_fn) == set(trace.functions)
        total = sum(o.total for o in per_fn.values())
        assert total == len(trace)

    def test_all_requests_accounted(self):
        trace = figure8_trace(duration_s=120.0)
        result = self.run_trace(trace, memory_mb=1024.0, cpu_cores=2)
        assert result.total == len(trace)
        assert result.served + result.dropped == result.total
        for record in result.records:
            assert record.outcome in ("hit", "miss", "dropped")


class TestLoadgen:
    def test_openwhisk_invoker_uses_ttl(self):
        invoker = openwhisk_invoker(InvokerConfig(memory_mb=1024.0))
        assert invoker.policy.name == "TTL"
        assert invoker.policy.ttl_s == 600.0

    def test_faascache_invoker_uses_online_gd(self):
        invoker = faascache_invoker(InvokerConfig(memory_mb=1024.0))
        assert isinstance(invoker.policy, OnlineGreedyDualPolicy)
        assert invoker.pool.stats is invoker.stats

    def test_comparison_on_cyclic_workload(self):
        trace = cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=60)
        config = InvokerConfig(memory_mb=1664.0, cpu_cores=8)
        comparison = compare_keepalive_systems(trace, config)
        # The LRU-adversarial cycle: FaasCache must win decisively.
        assert comparison.faascache.warm_starts > comparison.openwhisk.warm_starts
        assert comparison.warm_start_gain > 1.5
        assert comparison.served_gain >= 1.0

    def test_comparison_metrics_safe_on_zero(self):
        from repro.openwhisk.loadgen import LoadTestComparison
        from repro.openwhisk.invoker import InvokerResult

        empty = LoadTestComparison(
            "t", InvokerResult("TTL"), InvokerResult("GD")
        )
        assert empty.warm_start_gain == 1.0
        assert empty.served_gain == 1.0
        assert empty.latency_improvement == 1.0

"""Tests for hit-ratio curves and SHARDS estimation."""

import math

import pytest

from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.provisioning.shards import (
    shards_curve,
    shards_reuse_distances,
    shards_sample_functions,
)
from repro.traces.synth import cyclic_trace
from tests.conftest import make_trace


class TestHitRatioCurve:
    def test_is_cdf_of_distances(self):
        curve = HitRatioCurve.from_distances([100.0, 200.0, 300.0, 400.0])
        assert curve.hit_ratio(0.0) == 0.0
        assert curve.hit_ratio(100.0) == pytest.approx(0.25)
        assert curve.hit_ratio(250.0) == pytest.approx(0.5)
        assert curve.hit_ratio(400.0) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        curve = HitRatioCurve.from_distances([5.0, 1.0, 3.0, 3.0, 9.0])
        values = [curve.hit_ratio(x) for x in range(0, 12)]
        assert values == sorted(values)

    def test_compulsory_misses_cap_the_curve(self):
        curve = HitRatioCurve.from_distances([10.0, float("inf"), float("inf")])
        assert curve.max_hit_ratio == pytest.approx(1.0 / 3.0)
        assert curve.hit_ratio(1e12) == pytest.approx(1.0 / 3.0)

    def test_negative_size_is_zero(self):
        curve = HitRatioCurve.from_distances([1.0])
        assert curve.hit_ratio(-5.0) == 0.0

    def test_miss_ratio_complements(self):
        curve = HitRatioCurve.from_distances([1.0, 2.0])
        assert curve.miss_ratio(1.0) == pytest.approx(0.5)

    def test_required_size_inverts(self):
        curve = HitRatioCurve.from_distances([100.0, 200.0, 300.0, 400.0])
        assert curve.required_size(0.5) == 200.0
        assert curve.required_size(0.51) == 300.0
        assert curve.required_size(1.0) == 400.0
        assert curve.required_size(0.0) == 0.0

    def test_required_size_beyond_max_raises(self):
        curve = HitRatioCurve.from_distances([10.0, float("inf")])
        with pytest.raises(ValueError):
            curve.required_size(0.9)

    def test_required_size_validation(self):
        curve = HitRatioCurve.from_distances([10.0])
        with pytest.raises(ValueError):
            curve.required_size(1.5)

    def test_round_trip_size_to_ratio(self):
        distances = [float(x) for x in (50, 150, 150, 700, 900)]
        curve = HitRatioCurve.from_distances(distances)
        for target in (0.2, 0.4, 0.6, 0.8, 1.0):
            size = curve.required_size(target)
            assert curve.hit_ratio(size) >= target - 1e-12

    def test_weighted_construction(self):
        curve = HitRatioCurve.from_weighted_distances(
            [100.0, 200.0], [3.0, 1.0]
        )
        assert curve.hit_ratio(100.0) == pytest.approx(0.75)

    def test_rejects_infinite_finite_distance(self):
        with pytest.raises(ValueError):
            HitRatioCurve([float("inf")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HitRatioCurve([], infinite_weight=0.0)

    def test_working_set(self):
        curve = HitRatioCurve.from_distances([10.0, 99.0])
        assert curve.working_set_mb == 99.0

    def test_inflection_point_on_long_tailed_curve(self):
        # Many small distances + a long tail: the knee sits near the
        # cluster of small distances, far below the working set.
        distances = [10.0] * 80 + [1000.0 * i for i in range(1, 21)]
        curve = HitRatioCurve.from_distances(distances)
        knee = curve.inflection_point_mb()
        assert knee < 0.25 * curve.working_set_mb
        assert curve.hit_ratio(knee) >= 0.6

    def test_as_series(self):
        curve = HitRatioCurve.from_distances([1.0, 2.0])
        series = curve.as_series([0.0, 1.0, 2.0])
        assert series == [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]


class TestShards:
    def test_rate_one_selects_everything(self):
        trace = make_trace("ABCABC")
        assert set(shards_sample_functions(trace, 1.0)) == {"A", "B", "C"}

    def test_rate_validation(self):
        trace = make_trace("A")
        with pytest.raises(ValueError):
            shards_sample_functions(trace, 0.0)

    def test_sampling_is_deterministic_per_seed(self):
        trace = make_trace("ABCDEFGH")
        a = shards_sample_functions(trace, 0.5, seed=1)
        b = shards_sample_functions(trace, 0.5, seed=1)
        assert a == b

    def test_lower_rate_selects_subset(self):
        names = "".join(chr(ord("A") + i) for i in range(26))
        trace = make_trace(names)
        full = set(shards_sample_functions(trace, 1.0, seed=2))
        half = set(shards_sample_functions(trace, 0.5, seed=2))
        assert half <= full
        assert 0 < len(half) < len(full)

    def test_distances_scaled_by_inverse_rate(self):
        trace = make_trace("ABAB")
        full_d, full_w = shards_reuse_distances(trace, 1.0)
        assert all(w == 1.0 for w in full_w)
        finite = [d for d in full_d if not math.isinf(d)]
        assert finite  # both A and B reuse once

    def test_rate_one_curve_matches_exact(self):
        trace = cyclic_trace(num_functions=16, num_cycles=10)
        exact = HitRatioCurve.from_distances(reuse_distances(trace))
        sampled = shards_curve(trace, rate=1.0)
        for size in (0.0, 1000.0, 3000.0, 5000.0):
            assert sampled.hit_ratio(size) == pytest.approx(
                exact.hit_ratio(size)
            )

    def test_sampled_curve_approximates_exact(self):
        # A random-access workload yields a smooth curve the sampled
        # estimate should track. (A cyclic trace would give a single
        # sharp CDF step, where pointwise comparison is meaningless.)
        import random

        rng = random.Random(23)
        names = [f"fn{i}" for i in range(150)]
        sequence = [rng.choice(names) for __ in range(6000)]
        trace = make_trace(sequence, gap_s=1.0)
        exact = HitRatioCurve.from_distances(reuse_distances(trace))
        sampled = shards_curve(trace, rate=0.3, seed=3)
        probe_sizes = [
            exact.required_size(q) for q in (0.2, 0.4, 0.6, 0.8)
        ]
        for size in probe_sizes:
            assert sampled.hit_ratio(size) == pytest.approx(
                exact.hit_ratio(size), abs=0.1
            )

    def test_empty_sample_raises(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            shards_curve(trace, rate=1e-9, seed=0)

    def test_empty_sample_error_names_rate_and_count(self):
        """Regression: a zero-function sample used to return ([], [])
        from shards_reuse_distances, silently degenerating the curve.
        Both entry points must now raise, naming the rate and the
        sampled count so the failure is actionable."""
        trace = make_trace("AB")
        with pytest.raises(ValueError) as excinfo:
            shards_reuse_distances(trace, rate=1e-9, seed=0)
        message = str(excinfo.value)
        assert "1e-09" in message
        assert "0 of 2" in message
        with pytest.raises(ValueError) as curve_excinfo:
            shards_curve(trace, rate=1e-9, seed=0)
        assert "0 of 2" in str(curve_excinfo.value)

"""Unit tests for the event queue and the sweep runner."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.sweep import memory_sizes_gb, run_sweep
from tests.conftest import make_trace


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop() for __ in range(3)] == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_fifo_for_equal_times(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1  # peek does not consume

    def test_pop_until(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0, 4.0):
            q.push(t, t)
        drained = list(q.pop_until(2.5))
        assert [t for t, __ in drained] == [1.0, 2.0]
        assert len(q) == 2

    def test_bool_and_clear(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "x")
        assert q
        q.clear()
        assert not q


class TestMemorySizes:
    def test_inclusive_grid(self):
        assert memory_sizes_gb(1.0, 3.0, 1.0) == [1.0, 2.0, 3.0]

    def test_fractional_steps(self):
        sizes = memory_sizes_gb(0.5, 2.0, 0.5)
        assert sizes == [0.5, 1.0, 1.5, 2.0]

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            memory_sizes_gb(1.0, 2.0, 0.0)


class TestRunSweep:
    def test_grid_is_complete(self):
        trace = make_trace("ABCABCAB" * 5, gap_s=1.0)
        result = run_sweep(trace, [0.5, 1.0], policies=("GD", "LRU"))
        assert len(result.points) == 4
        assert set(result.policies()) == {"GD", "LRU"}
        assert result.memory_sizes() == [0.5, 1.0]

    def test_series_sorted_by_memory(self):
        trace = make_trace("ABAB" * 5, gap_s=1.0)
        result = run_sweep(trace, [2.0, 1.0], policies=("GD",))
        series = result.series("GD", "cold_start_pct")
        assert [m for m, __ in series] == [1.0, 2.0]

    def test_more_memory_never_hurts_resource_conserving_policy(self):
        trace = make_trace("ABCDEABCDE" * 10, gap_s=2.0)
        result = run_sweep(trace, [0.25, 0.5, 1.0, 2.0], policies=("GD",))
        series = result.series("GD", "cold_start_pct")
        values = [v for __, v in series]
        assert values == sorted(values, reverse=True)

    def test_best_policy_at(self):
        trace = make_trace("ABAB" * 5, gap_s=1.0)
        result = run_sweep(trace, [1.0], policies=("GD", "LRU"))
        best = result.best_policy_at(1.0, "cold_start_pct")
        assert best in ("GD", "LRU")
        with pytest.raises(ValueError):
            result.best_policy_at(9.0, "cold_start_pct")

    def test_progress_callback(self):
        trace = make_trace("AB", gap_s=1.0)
        calls = []
        run_sweep(
            trace, [1.0], policies=("GD", "LRU"),
            progress=lambda p, m: calls.append((p, m)),
        )
        assert calls == [("GD", 1.0), ("LRU", 1.0)]

    def test_cells_are_independent(self):
        """Policy state must not leak between sweep cells."""
        trace = make_trace("ABCABC" * 10, gap_s=1.0)
        once = run_sweep(trace, [1.0], policies=("GD",))
        twice = run_sweep(trace, [1.0, 1.0], policies=("GD",))
        assert (
            once.points[0].cold_start_pct
            == twice.points[0].cold_start_pct
            == twice.points[1].cold_start_pct
        )

"""Loopback HTTP smoke tests: the asyncio frontend, the load
generator, and the trace/stats counter-consistency contract."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.checks.sanitize import ReportSink
from repro.core.clock import SimClock
from repro.live.loadgen import fetch_stats, run_loadgen
from repro.live.server import ServerThread
from repro.live.service import LivePoolService
from repro.obs.tracer import Tracer
from repro.sim.scheduler import simulate
from repro.traces.synth import skewed_frequency_trace

MEMORY_MB = 2048.0


@pytest.fixture()
def live_server():
    """A sim-clock service with a ReportSink tracer behind the asyncio
    frontend on an ephemeral loopback port."""
    trace = skewed_frequency_trace(seed=21)
    sink = ReportSink()
    service = LivePoolService(
        trace, "GD", MEMORY_MB, clock=SimClock(), tracer=Tracer(sink)
    )
    thread = ServerThread(service).start()
    try:
        yield trace, service, sink, thread
    finally:
        thread.stop()


def _request(thread, method, path, body=None):
    conn = http.client.HTTPConnection(thread.host, thread.port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, live_server):
        __, __, __, thread = live_server
        status, payload = _request(thread, "GET", "/healthz")
        assert (status, payload) == (200, {"ok": True})

    def test_admit_and_stats(self, live_server):
        trace, __, __, thread = live_server
        name = next(iter(trace.functions))
        status, payload = _request(
            thread, "POST", "/admit", {"function": name, "now_s": 1.0}
        )
        assert status == 200
        assert payload["outcome"] == "cold"
        assert payload["now_s"] == 1.0
        assert payload["decision_us"] > 0.0
        status, stats = _request(thread, "GET", "/stats")
        assert status == 200
        assert stats["decisions"] == {"cold": 1}
        assert stats["counters"]["cold_starts"] == 1
        assert stats["http"]["errors_5xx"] == 0

    def test_release_endpoint(self, live_server):
        trace, __, __, thread = live_server
        name = next(iter(trace.functions))
        _request(thread, "POST", "/admit", {"function": name, "now_s": 1.0})
        status, payload = _request(
            thread, "POST", "/release", {"now_s": 10_000.0}
        )
        assert (status, payload) == (200, {"released": 1})

    def test_unknown_function_is_404(self, live_server):
        __, __, __, thread = live_server
        status, payload = _request(
            thread, "POST", "/admit", {"function": "nope"}
        )
        assert status == 404
        assert "unknown function" in payload["error"]

    def test_bad_json_is_400(self, live_server):
        __, __, __, thread = live_server
        conn = http.client.HTTPConnection(
            thread.host, thread.port, timeout=10
        )
        try:
            conn.request("POST", "/admit", body=b"{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_missing_function_field_is_400(self, live_server):
        __, __, __, thread = live_server
        status, __ = _request(thread, "POST", "/admit", {"now_s": 1.0})
        assert status == 400

    def test_unknown_route_is_404_and_wrong_method_405(self, live_server):
        __, __, __, thread = live_server
        assert _request(thread, "GET", "/nope")[0] == 404
        assert _request(thread, "GET", "/admit")[0] == 405
        assert _request(thread, "POST", "/stats")[0] == 405


class TestLoopbackSmoke:
    """serve + loadgen in-process: the sim/live/tracer triangle."""

    def test_pipeline_replay_matches_sim_and_tracer(self, live_server):
        trace, service, sink, thread = live_server
        report = run_loadgen(
            trace, thread.host, thread.port, mode="pipeline", limit=4000
        )
        # Zero 5xx, every request answered.
        assert report.errors_5xx == 0
        assert report.completed == report.sent == 4000
        assert report.statuses == {200: 4000}
        assert report.achieved_qps > 0.0
        assert report.decision_latency.count == 4000

        # /stats counters == the service's own == the tracer's rebuilt
        # counters (the repro.obs consistency contract, live).
        stats = fetch_stats(thread.host, thread.port)
        assert stats["decisions"] == report.outcomes
        assert stats["counters"] == service.counters()
        assert sink.report.check_counters(stats["counters"]) == []

    def test_live_http_equals_offline_replay(self):
        trace = skewed_frequency_trace(seed=23)
        service = LivePoolService(trace, "GD", MEMORY_MB, clock=SimClock())
        thread = ServerThread(service).start()
        try:
            report = run_loadgen(trace, thread.host, thread.port)
        finally:
            thread.stop()
        assert report.errors_5xx == 0
        assert report.completed == len(trace)
        offline = simulate(trace, "GD", MEMORY_MB)
        assert service.counters() == offline.metrics.counters()

    def test_expiry_timer_drains_idle_pool(self):
        import time

        from repro.core.policies.base import create_policy
        from repro.traces.model import Trace, TraceFunction

        # One fast function so the invocation completes in real
        # milliseconds; then the background tick alone must expire the
        # idle container (no further arrivals to piggyback on).
        trace = Trace(
            [
                TraceFunction(
                    name="quick",
                    memory_mb=64.0,
                    warm_time_s=0.001,
                    cold_time_s=0.005,
                )
            ],
            [],
            name="timer-test",
        )
        service = LivePoolService(
            trace, create_policy("TTL", ttl_s=0.05), MEMORY_MB
        )
        thread = ServerThread(service, tick_interval_s=0.02).start()
        try:
            status, __ = _request(
                thread, "POST", "/admit", {"function": "quick"}
            )
            assert status == 200
            stats = None
            for __ in range(250):  # up to ~5 s on a loaded machine
                stats = fetch_stats(thread.host, thread.port)
                if stats["counters"]["expirations"] >= 1:
                    break
                time.sleep(0.02)
            assert stats is not None
            assert stats["counters"]["expirations"] >= 1
            assert stats["pool"]["containers"] == 0
        finally:
            thread.stop()

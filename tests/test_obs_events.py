"""Event-schema conformance: every emitter, every event type.

The contract under test: each instrumented component emits only events
in :data:`repro.obs.events.EVENT_SCHEMAS`, with the required payload
fields at the required types, and the stream survives a JSONL
round-trip unchanged. Strict tracers raise on the first violation, so
replaying seeded workloads under ``strict=True`` is a whole-stack
conformance sweep.
"""

import pytest

from repro.core.policies import create_policy
from repro.obs.events import (
    EVENT_SCHEMAS,
    EVENT_TYPES,
    EVICTION_REASONS,
    SchemaError,
    validate_event,
)
from repro.obs.sinks import JsonlSink, RingBufferSink, read_jsonl_events
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import skewed_frequency_trace
from tests.conftest import make_trace


def run_traced(policy_name, memory_mb=1024.0, trace=None, **sim_kwargs):
    """Replay a seeded workload under a strict tracer; return events."""
    if trace is None:
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
    sink = RingBufferSink(capacity=1_000_000)
    tracer = Tracer(sink, strict=True)
    sim = KeepAliveSimulator(
        trace, create_policy(policy_name), memory_mb, tracer=tracer,
        **sim_kwargs,
    )
    sim.run()
    return sim, sink.snapshot()


class TestValidateEvent:
    def _evicted(self, **overrides):
        event = {
            "event": "evicted",
            "time_s": 1.0,
            "function": "f",
            "container_id": 3,
            "policy": "GD",
            "reason": "pressure",
            "freed_mb": 128.0,
            "priority": 7.5,
            "idle_s": 2.0,
            "age_s": 5.0,
        }
        event.update(overrides)
        return event

    def test_valid_event_passes(self):
        validate_event(self._evicted())

    def test_unknown_event_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown event type"):
            validate_event({"event": "warp_drive", "time_s": 0.0})

    def test_missing_envelope_rejected(self):
        with pytest.raises(SchemaError):
            validate_event({"event": "dropped"})  # no time_s
        with pytest.raises(SchemaError):
            validate_event({"time_s": 0.0})  # no event

    def test_missing_required_field_rejected(self):
        event = self._evicted()
        del event["freed_mb"]
        with pytest.raises(SchemaError, match="freed_mb"):
            validate_event(event)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="container_id"):
            validate_event(self._evicted(container_id="three"))

    def test_nullable_priority(self):
        validate_event(self._evicted(priority=None))

    def test_bad_eviction_reason_rejected(self):
        with pytest.raises(SchemaError, match="reason"):
            validate_event(self._evicted(reason="boredom"))

    def test_all_reasons_valid(self):
        for reason in EVICTION_REASONS:
            validate_event(self._evicted(reason=reason))

    def test_extra_context_fields_allowed(self):
        validate_event(
            self._evicted(server=3, memory_gb=0.5, experiment="x")
        )


class TestJsonlRoundTrip:
    def test_every_event_type_round_trips(self, tmp_path):
        """One representative event per type: write JSONL, read back,
        revalidate, compare payloads."""
        samples = {
            "invocation_arrived": {"function": "f"},
            "warm_hit": {"function": "f", "container_id": 1,
                         "duration_s": 0.5},
            "cold_start": {"function": "f", "container_id": 2,
                           "duration_s": 2.5},
            "container_spawned": {"function": "f", "container_id": 2,
                                  "memory_mb": 128.0, "pinned": False,
                                  "prewarmed": True},
            "evicted": {"function": "f", "container_id": 2, "policy": "GD",
                        "reason": "expiry", "freed_mb": 128.0,
                        "priority": None, "idle_s": 10.0, "age_s": 60.0},
            "dropped": {"function": "f", "needed_mb": 128.0},
            "pool_pressure": {"needed_mb": 128.0, "free_mb": 0.0,
                              "evictable_mb": 256.0, "used_mb": 1024.0,
                              "capacity_mb": 1024.0},
            "autoscale_decision": {"desired_servers": 4,
                                   "active_servers": 2,
                                   "arrival_rate": 12.5},
            "invocation_routed": {"function": "f", "server": 1,
                                  "balancer": "hash-affinity"},
            "fault_injected": {"function": "f", "kind": "crash"},
            "invocation_retried": {"function": "f", "attempt": 1,
                                   "delay_s": 2.0},
            "invocation_shed": {"function": "f", "reason": "retry_budget",
                                "attempts": 4},
            "server_down": {"server": 0},
            "server_recovered": {"server": 0, "downtime_s": 400.0},
            "capacity_shrunk": {"server": 0, "old_mb": 8192.0,
                                "new_mb": 4096.0, "deferred_mb": 0.0},
            "capacity_grown": {"server": 0, "old_mb": 4096.0,
                               "new_mb": 8192.0},
            "eviction_notice": {"server": 0, "evict_at_s": 130.0,
                                "notice_s": 30.0},
            "container_deflated": {"function": "f", "container_id": 2,
                                   "memory_mb": 128.0,
                                   "target_mb": 4096.0},
        }
        assert set(samples) == set(EVENT_TYPES)
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink, strict=True)
            for event_type, payload in samples.items():
                tracer.emit(event_type, 1.5, **payload)
        events = list(read_jsonl_events(path))
        assert len(events) == len(samples)
        for event in events:
            validate_event(event)
            payload = dict(event)
            event_type = payload.pop("event")
            assert payload.pop("time_s") == 1.5
            assert payload == samples[event_type]

    def test_simulator_stream_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        trace = skewed_frequency_trace(seed=1, duration_s=300.0)
        with JsonlSink(path) as sink:
            KeepAliveSimulator(
                trace, create_policy("GD"), 1024.0,
                tracer=Tracer(sink, strict=True),
            ).run()
        count = 0
        for event in read_jsonl_events(path):
            validate_event(event)
            count += 1
        assert count == sink.events_written
        assert count > len(trace)  # arrivals plus lifecycle events


class TestEmitterConformance:
    """Seeded replays under strict tracing: any schema violation at
    any emission site raises immediately."""

    def test_gd_emits_pressure_lifecycle(self):
        sim, events = run_traced("GD")
        seen = {e["event"] for e in events}
        assert {"invocation_arrived", "warm_hit", "cold_start",
                "container_spawned", "evicted", "dropped",
                "pool_pressure"} <= seen
        reasons = {e["reason"] for e in events if e["event"] == "evicted"}
        assert reasons == {"pressure"}

    def test_ttl_emits_expiry(self):
        # 400 s gaps against the 600 s default TTL: each revisit of A
        # finds its container expired.
        __, events = run_traced(
            "TTL", memory_mb=8192.0,
            trace=make_trace("ABAB", gap_s=400.0),
        )
        reasons = {e["reason"] for e in events if e["event"] == "evicted"}
        assert "expiry" in reasons

    def test_doorkeeper_emits_admission(self):
        # Single-shot functions never pass the admission threshold, so
        # the doorkeeper refuses to keep their containers warm.
        __, events = run_traced(
            "DOORKEEPER", memory_mb=8192.0,
            trace=make_trace("ABCADAEA", gap_s=5.0),
        )
        reasons = {e["reason"] for e in events if e["event"] == "evicted"}
        assert "admission" in reasons

    def test_hist_prewarm_spawns_flagged(self):
        # A arrives every 300 s (predictable, head > release
        # threshold), so HIST releases its container and prefetches a
        # new one before the predicted arrival; B drives the clock.
        functions = [
            TraceFunction("A", 128.0, 1.0, 3.0),
            TraceFunction("B", 128.0, 1.0, 3.0),
        ]
        invocations = sorted(
            [Invocation(i * 300.0, "A") for i in range(12)]
            + [Invocation(i * 10.0 + 1.0, "B") for i in range(360)],
            key=lambda inv: inv.time_s,
        )
        __, events = run_traced(
            "HIST", memory_mb=8192.0,
            trace=Trace(functions, invocations, name="regular"),
        )
        spawns = [e for e in events if e["event"] == "container_spawned"]
        assert any(e["prewarmed"] for e in spawns)
        reasons = {e["reason"] for e in events if e["event"] == "evicted"}
        assert "expiry" in reasons

    def test_pinned_spawn_flagged(self):
        trace = skewed_frequency_trace(seed=1, duration_s=120.0)
        name = next(iter(trace.functions))
        __, events = run_traced(
            "GD", trace=trace, reserved_concurrency={name: 1}
        )
        pinned = [
            e for e in events
            if e["event"] == "container_spawned" and e["pinned"]
        ]
        assert len(pinned) == 1
        assert pinned[0]["function"] == name

    def test_evicted_priority_is_policy_score(self):
        __, events = run_traced("GD")
        evicted = [e for e in events if e["event"] == "evicted"]
        assert evicted
        # GD scores every container, so no eviction is unscored.
        assert all(e["priority"] is not None for e in evicted)
        assert all(e["freed_mb"] > 0 for e in evicted)

    def test_cluster_routing_and_autoscale_conform(self):
        from repro.cluster.elastic import ElasticClusterSimulation
        from repro.cluster.simulation import ClusterSimulator

        trace = skewed_frequency_trace(seed=2, duration_s=600.0)
        sink = RingBufferSink(capacity=1_000_000)
        ClusterSimulator(
            trace, "affinity-spillover", num_servers=3,
            server_memory_mb=512.0, policy="GD",
            tracer=Tracer(sink, strict=True),
        ).run()
        routed = [
            e for e in sink if e["event"] == "invocation_routed"
        ]
        assert len(routed) == len(trace)
        assert {e["balancer"] for e in routed} == {"affinity-spillover"}
        assert all("spilled" in e for e in routed)

        sink = RingBufferSink(capacity=1_000_000)
        ElasticClusterSimulation(
            trace, server_memory_mb=1024.0, max_servers=4,
            control_period_s=120.0,
            tracer=Tracer(sink, strict=True),
        ).run()
        decisions = [
            e for e in sink if e["event"] == "autoscale_decision"
        ]
        assert decisions
        servers = {
            e.get("server")
            for e in sink
            if e["event"] == "invocation_arrived"
        }
        assert len(servers) >= 1  # bound context survives into events

    def test_strict_tracer_rejects_bad_emit(self):
        tracer = Tracer(RingBufferSink(), strict=True)
        with pytest.raises(SchemaError):
            tracer.emit("evicted", 0.0, function="f")  # missing fields

    def test_schema_covers_exactly_the_emitted_vocabulary(self):
        assert set(EVENT_SCHEMAS) == set(EVENT_TYPES)
        assert len(EVENT_TYPES) == 18

"""Tests for the two-phase dataflow engine and its call graph.

Two layers under test:

* **Interprocedural FC003** — the set-order rule now follows sets
  through ``self._attr`` loads, function return values (including
  cross-file), and module-level constants.
* **Degrade-to-unknown** — the adversarial shapes (cycles,
  ``functools.partial``, unrecognized decorators, package
  ``__init__`` re-export chains) must produce *unknown* summaries,
  never wrong ones. A wrong "returns a set" summary would flag clean
  code; a wrong call edge would mark sync-only paths async-reachable.
"""

import ast
import pathlib
import textwrap

from repro.checks.callgraph import CallGraph
from repro.checks.dataflow import ProjectIndex, summarize_module
from repro.checks.linter import check_paths


def _summarize(tmp_path, name, source):
    path = tmp_path / name
    source = textwrap.dedent(source)
    path.write_text(source)
    tree = ast.parse(source, filename=str(path))
    return summarize_module(tree, path, source)


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestInterproceduralSetTracking:
    def test_attribute_load_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.attrcase
            class Tracker:
                def __init__(self):
                    self._down = set()

                def order(self):
                    return [n for n in self._down]
            """,
        )
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC003"]
        assert "_down" in result.findings[0].message

    def test_function_return_flagged_cross_file(self, tmp_path):
        helper = _write(
            tmp_path,
            "helpers.py",
            """\
            # repro-checks-module: repro.sim.helpers
            def warm_names():
                return {"alpha", "beta"}
            """,
        )
        consumer = _write(
            tmp_path,
            "consumer.py",
            """\
            # repro-checks-module: repro.sim.consumer
            from repro.sim.helpers import warm_names


            def walk():
                return [n for n in warm_names()]
            """,
        )
        result = check_paths([helper, consumer])
        assert [f.code for f in result.findings] == ["FC003"]
        assert result.findings[0].path == str(consumer)

    def test_module_constant_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.constcase
            STATES = {"warm", "cold"}


            def walk():
                return [s for s in STATES]
            """,
        )
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC003"]

    def test_local_rebind_shadows_module_constant(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.shadowcase
            STATES = {"warm", "cold"}


            def walk(items):
                STATES = sorted(items)
                return [s for s in STATES]
            """,
        )
        assert check_paths([path]).ok

    def test_ambiguous_attribute_not_flagged(self, tmp_path):
        # The attribute is a set in __init__ but rebound to a list in
        # another method: ambiguous, so the engine must stay silent.
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.ambiguous
            class Tracker:
                def __init__(self):
                    self._down = set()

                def freeze(self):
                    self._down = sorted(self._down)

                def order(self):
                    return [n for n in self._down]
            """,
        )
        assert check_paths([path]).ok


class TestDegradeToUnknown:
    def test_recursion_cycle_terminates_as_unknown(self, tmp_path):
        summary = _summarize(
            tmp_path,
            "cyc.py",
            """\
            # repro-checks-module: repro.sim.cyc
            def ping(n):
                return pong(n)


            def pong(n):
                return ping(n)
            """,
        )
        index = ProjectIndex([summary])
        ping = summary.functions["ping"]
        assert index.returns_set(ping, "repro.sim.cyc") is False

    def test_cycle_with_set_leg_still_unknown(self, tmp_path):
        # One leg of the cycle returns a literal set, but the
        # recursive leg is unknowable: all-paths-must-be-set fails.
        path = _write(
            tmp_path,
            "cyc2.py",
            """\
            # repro-checks-module: repro.sim.cyc2
            def gather(n):
                if n <= 0:
                    return {n}
                return gather(n - 1)


            def walk(n):
                return [x for x in gather(n)]
            """,
        )
        assert check_paths([path]).ok

    def test_functools_partial_degrades(self, tmp_path):
        summary = _summarize(
            tmp_path,
            "part.py",
            """\
            # repro-checks-module: repro.sim.part
            import functools


            def base(x):
                return {x}


            def make():
                return functools.partial(base, 1)
            """,
        )
        index = ProjectIndex([summary])
        graph = CallGraph(index)
        make = summary.functions["make"]
        # No wrong "returns a set" summary, no fabricated edge to base.
        assert index.returns_set(make, "repro.sim.part") is False
        assert "repro.sim.part.base" not in graph.callees_of(
            "repro.sim.part.make"
        )

    def test_unknown_decorator_degrades(self, tmp_path):
        path = _write(
            tmp_path,
            "deco.py",
            """\
            # repro-checks-module: repro.sim.deco
            from repro.sim.elsewhere import memoize


            @memoize
            def cached_names():
                return {"alpha"}


            def walk():
                return [n for n in cached_names()]
            """,
        )
        summary = _summarize(
            tmp_path,
            "deco2.py",
            (tmp_path / "deco.py").read_text(),
        )
        assert summary.functions["cached_names"].unknown_decorated
        # The decorator may replace the return value entirely: the
        # loop must NOT be flagged on the undecorated body's summary.
        assert check_paths([path]).ok

    def test_benign_decorator_keeps_summary(self, tmp_path):
        path = _write(
            tmp_path,
            "benign.py",
            """\
            # repro-checks-module: repro.sim.benign
            import functools


            @functools.lru_cache(maxsize=None)
            def cached_names():
                return {"alpha"}


            def walk():
                return [n for n in cached_names()]
            """,
        )
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC003"]

    def test_init_reexport_resolves(self, tmp_path):
        impl = _write(
            tmp_path,
            "impl.py",
            """\
            # repro-checks-module: repro.sim.pkg.impl
            def make_names():
                return {"alpha"}
            """,
        )
        init = _write(
            tmp_path,
            "init.py",
            """\
            # repro-checks-module: repro.sim.pkg
            from repro.sim.pkg.impl import make_names
            """,
        )
        consumer = _write(
            tmp_path,
            "consumer.py",
            """\
            # repro-checks-module: repro.sim.consumer
            from repro.sim.pkg import make_names


            def walk():
                return [n for n in make_names()]
            """,
        )
        result = check_paths([impl, init, consumer])
        assert [f.code for f in result.findings] == ["FC003"]
        assert result.findings[0].path == str(consumer)

    def test_broken_reexport_degrades(self, tmp_path):
        init = _write(
            tmp_path,
            "init.py",
            """\
            # repro-checks-module: repro.sim.pkg
            from repro.sim.pkg.missing import make_names
            """,
        )
        consumer = _write(
            tmp_path,
            "consumer.py",
            """\
            # repro-checks-module: repro.sim.consumer
            from repro.sim.pkg import make_names


            def walk():
                return [n for n in make_names()]
            """,
        )
        assert check_paths([init, consumer]).ok

    def test_reexport_cycle_hits_hop_limit(self, tmp_path):
        a = _write(
            tmp_path,
            "a.py",
            """\
            # repro-checks-module: repro.sim.a
            from repro.sim.b import make_names
            """,
        )
        b = _write(
            tmp_path,
            "b.py",
            """\
            # repro-checks-module: repro.sim.b
            from repro.sim.a import make_names
            """,
        )
        consumer = _write(
            tmp_path,
            "consumer.py",
            """\
            # repro-checks-module: repro.sim.consumer
            from repro.sim.a import make_names


            def walk():
                return [n for n in make_names()]
            """,
        )
        assert check_paths([a, b, consumer]).ok


class TestCallGraphReachability:
    def _graph(self, tmp_path, source):
        summary = _summarize(tmp_path, "mod.py", source)
        return CallGraph(ProjectIndex([summary]))

    def test_async_reachability_is_transitive(self, tmp_path):
        graph = self._graph(
            tmp_path,
            """\
            # repro-checks-module: repro.live.reach
            async def loop():
                step()


            def step():
                helper()


            def helper():
                pass


            def unrelated():
                pass
            """,
        )
        assert "repro.live.reach.step" in graph.async_reachable
        assert "repro.live.reach.helper" in graph.async_reachable
        assert "repro.live.reach.unrelated" not in graph.async_reachable

    def test_public_entry_point_counts(self, tmp_path):
        graph = self._graph(
            tmp_path,
            """\
            # repro-checks-module: repro.live.entries
            def serve(pool):
                _shared(pool)


            def reclaim(pool):
                _shared(pool)


            def only(pool):
                _single(pool)


            def _shared(pool):
                pass


            def _single(pool):
                pass
            """,
        )
        assert graph.public_entry_count("repro.live.entries._shared") == 2
        assert graph.public_entry_count("repro.live.entries._single") == 1

    def test_fc010_cross_file_reachability(self, tmp_path):
        runner = _write(
            tmp_path,
            "runner.py",
            """\
            # repro-checks-module: repro.live.runner
            from repro.live.waits import backoff


            async def loop():
                backoff()
            """,
        )
        waits = _write(
            tmp_path,
            "waits.py",
            """\
            # repro-checks-module: repro.live.waits
            import time


            def backoff():
                time.sleep(1.0)
            """,
        )
        result = check_paths([runner, waits])
        assert [f.code for f in result.findings] == ["FC010"]
        assert result.findings[0].path == str(waits)
        # Linted alone, the helper has no async caller in view:
        # degrade to silent rather than guess.
        assert check_paths([waits]).ok

"""Edge-case coverage for metrics, server config, and boundary paths."""

import pytest

from repro.sim.metrics import FunctionOutcome, SimulationMetrics
from repro.sim.server import GB_MB, ServerConfig
from tests.conftest import make_function, make_trace


class TestFunctionOutcome:
    def test_counters_and_ratios(self):
        o = FunctionOutcome(warm=3, cold=1, dropped=2)
        assert o.served == 4
        assert o.total == 6
        assert o.hit_ratio == pytest.approx(0.75)

    def test_empty_outcome(self):
        o = FunctionOutcome()
        assert o.hit_ratio == 0.0
        assert o.total == 0


class TestSimulationMetricsDirect:
    def test_empty_metrics(self):
        m = SimulationMetrics()
        assert m.cold_start_ratio == 0.0
        assert m.hit_ratio == 0.0
        assert m.global_hit_ratio == 0.0
        assert m.drop_ratio == 0.0
        assert m.exec_time_increase_pct == 0.0
        assert m.mean_memory_mb == 0.0

    def test_record_warm_with_actual_time(self):
        m = SimulationMetrics()
        m.record_warm("f", warm_time_s=1.0, actual_time_s=3.0)
        assert m.ideal_exec_time_s == 1.0
        assert m.actual_exec_time_s == 3.0
        assert m.warm_starts == 1

    def test_record_cold_accounting(self):
        m = SimulationMetrics()
        m.record_cold("f", warm_time_s=1.0, cold_time_s=4.0)
        assert m.added_exec_time_s == pytest.approx(3.0)
        assert m.exec_time_increase_pct == pytest.approx(300.0)

    def test_mean_memory_time_weighted(self):
        m = SimulationMetrics()
        m.memory_timeline = [(0.0, 100.0), (10.0, 300.0), (30.0, 0.0)]
        # 100 MB for 10 s, 300 MB for 20 s -> (1000 + 6000) / 30.
        assert m.mean_memory_mb == pytest.approx(7000.0 / 30.0)

    def test_mean_memory_single_sample(self):
        m = SimulationMetrics()
        m.memory_timeline = [(5.0, 123.0)]
        assert m.mean_memory_mb == 123.0

    def test_mean_memory_zero_span(self):
        m = SimulationMetrics()
        m.memory_timeline = [(5.0, 100.0), (5.0, 200.0)]
        assert m.mean_memory_mb == 200.0

    def test_per_function_isolated(self):
        m = SimulationMetrics()
        m.record_warm("a", 1.0)
        m.record_dropped("b")
        assert m.per_function["a"].warm == 1
        assert m.per_function["b"].dropped == 1
        assert "c" not in m.per_function


class TestServerConfig:
    def test_gb_round_trip(self):
        config = ServerConfig.with_memory_gb(48.0)
        assert config.memory_mb == 48.0 * GB_MB
        assert config.memory_gb == pytest.approx(48.0)

    def test_paper_default_cores(self):
        assert ServerConfig(memory_mb=1024.0).cpu_cores == 48

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(memory_mb=0.0)
        with pytest.raises(ValueError):
            ServerConfig(memory_mb=1024.0, cpu_cores=0)


class TestControllerBoundaries:
    def make(self, deadband):
        from repro.provisioning.controller import ProportionalController
        from repro.provisioning.hit_ratio import HitRatioCurve

        curve = HitRatioCurve.from_distances([100.0, 200.0, 300.0, 400.0])
        return ProportionalController(
            curve,
            target_miss_speed=1.0,
            initial_size_mb=200.0,
            control_period_s=100.0,
            ewma_alpha=1.0,
            deadband=deadband,
        )

    def test_error_inside_deadband_does_not_resize(self):
        controller = self.make(deadband=0.3)
        # miss speed 1.29/s -> error fraction 0.29, inside the band.
        decision = controller.step(100.0, 400, 129)
        assert decision.error_fraction == pytest.approx(0.29)
        assert not decision.resized

    def test_error_just_past_deadband_resizes(self):
        controller = self.make(deadband=0.3)
        decision = controller.step(100.0, 400, 140)  # 40% error
        assert decision.resized

    def test_zero_deadband_always_acts_on_error(self):
        controller = self.make(deadband=0.0)
        decision = controller.step(100.0, 400, 101)
        assert decision.error_fraction > 0.0
        # Equation 3 may still land on the same size, but the step
        # must have evaluated (non-resize only if size is unchanged).
        assert decision.cache_size_mb >= 100.0

    def test_no_arrivals_period(self):
        controller = self.make(deadband=0.3)
        decision = controller.step(100.0, 0, 0)
        # Miss speed 0 vs target 1: 100% error, but the smoothed rate
        # is 0, so Equation 3 cannot be applied — size must not blow up.
        assert decision.cache_size_mb == 200.0


class TestInvokerQueueEdges:
    def test_zero_capacity_queue_drops_everything_unservable(self):
        from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
        from repro.traces.model import Invocation, Trace

        f = make_function("A", memory_mb=10.0, warm_time_s=100.0,
                          cold_time_s=110.0)
        trace = Trace(
            [f], [Invocation(0.0, "A"), Invocation(0.1, "A"), Invocation(0.2, "A")]
        )
        result = SimulatedInvoker(
            InvokerConfig(memory_mb=1024.0, cpu_cores=1, queue_capacity=0,
                          max_concurrent_launches=1),
            policy="GD",
        ).run(trace)
        assert result.served == 1
        assert result.dropped == 2

    def test_empty_trace(self):
        from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
        from repro.traces.model import Trace

        trace = Trace([make_function("A")], [])
        result = SimulatedInvoker(
            InvokerConfig(memory_mb=1024.0), policy="GD"
        ).run(trace)
        assert result.total == 0
        assert result.mean_latency_s() == 0.0
        assert result.percentile_latency_s(99.0) == 0.0
        assert result.mean_queue_wait_s() == 0.0

    def test_function_larger_than_pool_drops(self):
        from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
        from repro.traces.model import Invocation, Trace

        f = make_function("A", memory_mb=4096.0)
        trace = Trace([f], [Invocation(0.0, "A")])
        result = SimulatedInvoker(
            InvokerConfig(memory_mb=1024.0, request_timeout_s=5.0),
            policy="GD",
        ).run(trace)
        assert result.dropped == 1


class TestSimulatorMisbehaviourContracts:
    def test_policy_returning_running_victim_raises(self):
        """The pool's no-running-evictions invariant is enforced even
        against a buggy policy."""
        from repro.core.policies.base import KeepAlivePolicy
        from repro.sim.scheduler import KeepAliveSimulator
        from repro.traces.model import Invocation, Trace

        class EvilPolicy(KeepAlivePolicy):
            name = "EVIL"

            def priority(self, container, now_s):
                return 0.0

            def select_victims(self, pool, needed_mb, now_s):
                running = pool.running_containers()
                return list(running) if running else []

        a = make_function("A", memory_mb=600.0, warm_time_s=50.0,
                          cold_time_s=60.0)
        b = make_function("B", memory_mb=600.0)
        trace = Trace([a, b], [Invocation(0.0, "A"), Invocation(1.0, "B")])
        sim = KeepAliveSimulator(trace, EvilPolicy(), 1000.0)
        with pytest.raises(RuntimeError):
            sim.run()

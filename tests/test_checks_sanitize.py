"""Tests for the runtime invariant sanitizer (REPRO_SANITIZE=1).

The sanitizer must (a) catch deliberately-injected accounting drift,
victim-order violations, and trace/metrics counter divergence, and
(b) install nothing at all when disabled — the zero-overhead contract
the bench-smoke budget relies on.
"""

import os

import pytest

from repro.checks.sanitize import (
    SanitizeError,
    sanitize_enabled,
    set_sanitize,
)
from repro.core.container import Container
from repro.core.policies.base import create_policy
from repro.core.pool import ContainerPool
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.synth import skewed_frequency_trace
from tests.conftest import make_function


@pytest.fixture
def sanitized():
    set_sanitize(True)
    yield
    set_sanitize(None)


@pytest.fixture
def unsanitized():
    set_sanitize(False)
    yield
    set_sanitize(None)


def make_pool(capacity_mb=1000.0):
    return ContainerPool(capacity_mb)


def pooled(pool, memory_mb=200.0, name="f"):
    container = Container(make_function(name=name, memory_mb=memory_mb), 0.0)
    pool.add(container)
    return container


class TestEnablement:
    def test_env_var_controls_default(self, monkeypatch):
        set_sanitize(None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()

    def test_set_sanitize_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_sanitize(False)
        try:
            assert not sanitize_enabled()
        finally:
            set_sanitize(None)

    def test_cli_sanitize_flag_exports_env(self, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SANITIZE", "0")
        code = cli_main(
            [
                "simulate",
                "--trace",
                "skewed-frequency",
                "--memory-gb",
                "2",
                "--sanitize",
            ]
        )
        assert code == 0
        assert os.environ["REPRO_SANITIZE"] == "1"
        capsys.readouterr()


class TestPoolAccounting:
    def test_detects_used_mb_drift(self, sanitized):
        pool = make_pool()
        pooled(pool, name="a")
        pool._used_mb += 64.0  # simulate a bookkeeping bug
        with pytest.raises(SanitizeError, match="memory conservation"):
            pooled(pool, name="b")

    def test_detects_evictable_drift(self, sanitized):
        pool = make_pool()
        container = pooled(pool, name="a")
        pool._evictable_mb += 64.0
        with pytest.raises(SanitizeError, match="evictable-memory"):
            pool.evict(container)

    def test_clean_pool_passes(self, sanitized):
        pool = make_pool()
        a = pooled(pool, name="a")
        pooled(pool, name="b")
        pool.evict(a)
        assert pool.used_mb == 200.0

    def test_disabled_pool_tolerates_drift(self, unsanitized):
        pool = make_pool()
        pooled(pool, name="a")
        pool._used_mb += 64.0
        pooled(pool, name="b")  # no hook installed, no error


class TestVictimOrder:
    def _two_idle(self, sanitized_pool):
        a = pooled(sanitized_pool, name="a")
        b = pooled(sanitized_pool, name="b")
        return a, b

    def test_monotone_iteration_passes(self, sanitized):
        pool = make_pool()
        a, b = self._two_idle(pool)
        keys = {
            a.container_id: (1.0, 0.0, a.container_id),
            b.container_id: (2.0, 0.0, b.container_id),
        }
        victims = list(pool.iter_victims(lambda c: keys[c.container_id]))
        assert victims == [a, b]

    def test_key_decrease_mid_scan_raises(self, sanitized):
        pool = make_pool()
        a, b = self._two_idle(pool)
        keys = {
            a.container_id: (1.0, 0.0, a.container_id),
            b.container_id: (2.0, 0.0, b.container_id),
        }
        iterator = pool.iter_victims(lambda c: keys[c.container_id])
        assert next(iterator) is a
        # A policy breaking the monotone-key contract: b's key drops
        # below the key already yielded.
        keys[b.container_id] = (0.5, 0.0, b.container_id)
        with pytest.raises(SanitizeError, match="monotonicity"):
            list(iterator)


class TestCounterEquality:
    def test_clean_run_passes(self, sanitized):
        result = simulate(skewed_frequency_trace(seed=1), "GD", 2048.0)
        assert result.metrics.served > 0

    def test_metrics_corruption_detected(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 2048.0)
        assert sim._sanitize_report is not None
        sim.metrics.cold_starts += 1  # diverge from the event stream
        with pytest.raises(SanitizeError, match="counter equality"):
            sim.run()

    def test_user_tracer_suppresses_internal_report(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        tracer = Tracer(RingBufferSink())
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 2048.0, tracer=tracer
        )
        assert sim._sanitize_report is None

    def test_warmup_run_skips_counter_check(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 2048.0, warmup_s=60.0
        )
        assert sim._sanitize_report is None
        sim.run()  # pool invariants still checked, counters not


class TestZeroOverheadWhenDisabled:
    def test_no_hooks_installed(self, unsanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 2048.0)
        assert sim._sanitize_report is None
        assert sim._tracer is None
        assert not sim.pool._sanitize


class TestDriftClampChurn:
    """Regression for the float-drift clamps (see ContainerPool.evict):
    they must fire only when the population is actually empty, so
    fractional-size churn neither accumulates visible drift nor trips
    the sanitizer's exact recomputation."""

    def test_fractional_churn_clean_under_sanitizer(self, sanitized):
        import random

        pool = ContainerPool(10_000.0)
        rng = random.Random(2024)
        for round_no in range(30):
            live = []
            for i in range(20):
                mem = rng.choice((33.3, 128.7, 0.07, 501.101, 76.49))
                c = Container(
                    make_function(name=f"f{i}", memory_mb=mem), 0.0
                )
                pool.add(c)  # sanitizer recomputes exactly per op
                live.append(c)
            rng.shuffle(live)
            for c in live:
                pool.evict(c)
            # Fully drained: the clamp must have zeroed the residue.
            assert pool.used_mb == 0.0
            assert pool.evictable_mb() == 0.0

    def test_clamp_never_fires_while_populated(self, sanitized):
        pool = ContainerPool(1000.0)
        keeper = pooled(pool, memory_mb=0.1, name="keeper")
        for i in range(200):
            c = pooled(pool, memory_mb=3.7, name=f"churn{i}")
            pool.evict(c)
        # The keeper's footprint must survive the churn (float
        # residue within the sanitizer's tolerance is fine) — a clamp
        # firing mid-population would have zeroed used_mb with a
        # container still pooled, and the sanitizer's per-op exact
        # recomputation would have raised above.
        assert pool.used_mb == pytest.approx(0.1)
        pool.evict(keeper)
        assert pool.used_mb == 0.0

    def test_can_fit_tolerates_relative_drift(self, sanitized):
        # 100 x 0.1 accumulates binary-representation error well
        # within the capacity-relative slack; the final exact-fit add
        # must still be admitted.
        pool = ContainerPool(10.0)
        for i in range(100):
            assert pool.can_fit(0.1)
            pool.add(
                Container(
                    make_function(name=f"s{i}", memory_mb=0.1), 0.0
                )
            )
        assert not pool.can_fit(0.1 + 1e-6)

    def test_set_capacity_tolerates_relative_drift(self, sanitized):
        pool = ContainerPool(10.0)
        for i in range(100):
            pool.add(
                Container(
                    make_function(name=f"s{i}", memory_mb=0.1), 0.0
                )
            )
        # Shrinking to the nominal sum must survive the accumulated
        # float residue in used_mb.
        pool.set_capacity(10.0)
        assert pool.capacity_mb == 10.0

"""Tests for the runtime invariant sanitizer (REPRO_SANITIZE=1).

The sanitizer must (a) catch deliberately-injected accounting drift,
victim-order violations, and trace/metrics counter divergence, and
(b) install nothing at all when disabled — the zero-overhead contract
the bench-smoke budget relies on.
"""

import os

import pytest

from repro.checks.sanitize import (
    SanitizeError,
    sanitize_enabled,
    set_sanitize,
)
from repro.core.container import Container
from repro.core.policies.base import create_policy
from repro.core.pool import ContainerPool
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.synth import skewed_frequency_trace
from tests.conftest import make_function


@pytest.fixture
def sanitized():
    set_sanitize(True)
    yield
    set_sanitize(None)


@pytest.fixture
def unsanitized():
    set_sanitize(False)
    yield
    set_sanitize(None)


def make_pool(capacity_mb=1000.0):
    return ContainerPool(capacity_mb)


def pooled(pool, memory_mb=200.0, name="f"):
    container = Container(make_function(name=name, memory_mb=memory_mb), 0.0)
    pool.add(container)
    return container


class TestEnablement:
    def test_env_var_controls_default(self, monkeypatch):
        set_sanitize(None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()

    def test_set_sanitize_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_sanitize(False)
        try:
            assert not sanitize_enabled()
        finally:
            set_sanitize(None)

    def test_cli_sanitize_flag_exports_env(self, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SANITIZE", "0")
        code = cli_main(
            [
                "simulate",
                "--trace",
                "skewed-frequency",
                "--memory-gb",
                "2",
                "--sanitize",
            ]
        )
        assert code == 0
        assert os.environ["REPRO_SANITIZE"] == "1"
        capsys.readouterr()


class TestPoolAccounting:
    def test_detects_used_mb_drift(self, sanitized):
        pool = make_pool()
        pooled(pool, name="a")
        pool._used_mb += 64.0  # simulate a bookkeeping bug
        with pytest.raises(SanitizeError, match="memory conservation"):
            pooled(pool, name="b")

    def test_detects_evictable_drift(self, sanitized):
        pool = make_pool()
        container = pooled(pool, name="a")
        pool._evictable_mb += 64.0
        with pytest.raises(SanitizeError, match="evictable-memory"):
            pool.evict(container)

    def test_clean_pool_passes(self, sanitized):
        pool = make_pool()
        a = pooled(pool, name="a")
        pooled(pool, name="b")
        pool.evict(a)
        assert pool.used_mb == 200.0

    def test_disabled_pool_tolerates_drift(self, unsanitized):
        pool = make_pool()
        pooled(pool, name="a")
        pool._used_mb += 64.0
        pooled(pool, name="b")  # no hook installed, no error


class TestVictimOrder:
    def _two_idle(self, sanitized_pool):
        a = pooled(sanitized_pool, name="a")
        b = pooled(sanitized_pool, name="b")
        return a, b

    def test_monotone_iteration_passes(self, sanitized):
        pool = make_pool()
        a, b = self._two_idle(pool)
        keys = {
            a.container_id: (1.0, 0.0, a.container_id),
            b.container_id: (2.0, 0.0, b.container_id),
        }
        victims = list(pool.iter_victims(lambda c: keys[c.container_id]))
        assert victims == [a, b]

    def test_key_decrease_mid_scan_raises(self, sanitized):
        pool = make_pool()
        a, b = self._two_idle(pool)
        keys = {
            a.container_id: (1.0, 0.0, a.container_id),
            b.container_id: (2.0, 0.0, b.container_id),
        }
        iterator = pool.iter_victims(lambda c: keys[c.container_id])
        assert next(iterator) is a
        # A policy breaking the monotone-key contract: b's key drops
        # below the key already yielded.
        keys[b.container_id] = (0.5, 0.0, b.container_id)
        with pytest.raises(SanitizeError, match="monotonicity"):
            list(iterator)


class TestCounterEquality:
    def test_clean_run_passes(self, sanitized):
        result = simulate(skewed_frequency_trace(seed=1), "GD", 2048.0)
        assert result.metrics.served > 0

    def test_metrics_corruption_detected(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 2048.0)
        assert sim._sanitize_report is not None
        sim.metrics.cold_starts += 1  # diverge from the event stream
        with pytest.raises(SanitizeError, match="counter equality"):
            sim.run()

    def test_user_tracer_suppresses_internal_report(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        tracer = Tracer(RingBufferSink())
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 2048.0, tracer=tracer
        )
        assert sim._sanitize_report is None

    def test_warmup_run_skips_counter_check(self, sanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 2048.0, warmup_s=60.0
        )
        assert sim._sanitize_report is None
        sim.run()  # pool invariants still checked, counters not


class TestZeroOverheadWhenDisabled:
    def test_no_hooks_installed(self, unsanitized):
        trace = skewed_frequency_trace(seed=1)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 2048.0)
        assert sim._sanitize_report is None
        assert sim._tracer is None
        assert not sim.pool._sanitize

"""Tests for reuse distances (naive and Fenwick implementations)."""

import math

import pytest

from repro.provisioning.reuse_distance import (
    FenwickTree,
    reuse_distances,
    reuse_distances_naive,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_trace


def sized_trace(sequence, sizes):
    functions = [
        TraceFunction(name, mb, 1.0, 2.0) for name, mb in sizes.items()
    ]
    invocations = [Invocation(float(i), n) for i, n in enumerate(sequence)]
    return Trace(functions, invocations)


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(5)
        tree.add(0, 1.0)
        tree.add(2, 3.0)
        tree.add(4, 5.0)
        assert tree.prefix_sum(0) == 1.0
        assert tree.prefix_sum(2) == 4.0
        assert tree.prefix_sum(4) == 9.0

    def test_range_sum(self):
        tree = FenwickTree(5)
        for i in range(5):
            tree.add(i, float(i + 1))
        assert tree.range_sum(1, 3) == 2.0 + 3.0 + 4.0
        assert tree.range_sum(3, 1) == 0.0  # empty range

    def test_negative_updates(self):
        tree = FenwickTree(3)
        tree.add(1, 5.0)
        tree.add(1, -5.0)
        assert tree.prefix_sum(2) == 0.0

    def test_bounds_checked(self):
        tree = FenwickTree(3)
        with pytest.raises(IndexError):
            tree.add(3, 1.0)
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_prefix_of_negative_index_is_zero(self):
        assert FenwickTree(3).prefix_sum(-1) == 0.0


class TestReuseDistances:
    def test_paper_example(self):
        """ABCBCA: reuse distance of the final A is size(B)+size(C)."""
        trace = sized_trace("ABCBCA", {"A": 10.0, "B": 20.0, "C": 30.0})
        distances = reuse_distances(trace)
        assert distances[-1] == pytest.approx(50.0)

    def test_first_access_is_infinite(self):
        trace = sized_trace("ABC", {"A": 1.0, "B": 1.0, "C": 1.0})
        assert all(math.isinf(d) for d in reuse_distances(trace))

    def test_immediate_reuse_distance_zero(self):
        trace = sized_trace("AA", {"A": 64.0})
        assert reuse_distances(trace)[1] == 0.0

    def test_duplicates_counted_once(self):
        # A B B B A: only one unique function between the two As.
        trace = sized_trace("ABBBA", {"A": 10.0, "B": 20.0})
        assert reuse_distances(trace)[-1] == pytest.approx(20.0)

    def test_self_not_counted(self):
        # A B A B: distance of second B is size(A) only.
        trace = sized_trace("ABAB", {"A": 10.0, "B": 20.0})
        assert reuse_distances(trace)[-1] == pytest.approx(10.0)

    def test_matches_naive_on_structured_sequence(self):
        trace = sized_trace(
            "ABCBADCACBDABCD",
            {"A": 5.0, "B": 7.0, "C": 11.0, "D": 13.0},
        )
        fast = reuse_distances(trace)
        slow = reuse_distances_naive(trace)
        assert len(fast) == len(slow)
        for f, s in zip(fast, slow):
            if math.isinf(s):
                assert math.isinf(f)
            else:
                assert f == pytest.approx(s)

    def test_matches_naive_on_random_sequence(self):
        import random

        rng = random.Random(17)
        names = ["f%d" % i for i in range(12)]
        sizes = {n: float(rng.randint(32, 2048)) for n in names}
        sequence = [rng.choice(names) for __ in range(400)]
        trace = sized_trace(sequence, sizes)
        fast = reuse_distances(trace)
        slow = reuse_distances_naive(trace)
        for f, s in zip(fast, slow):
            if math.isinf(s):
                assert math.isinf(f)
            else:
                assert f == pytest.approx(s)

    def test_one_distance_per_invocation(self):
        trace = make_trace("ABCBCABCA")
        assert len(reuse_distances(trace)) == 9

    def test_empty_trace(self):
        trace = Trace([TraceFunction("A", 1.0, 1.0, 2.0)], [])
        assert reuse_distances(trace) == []

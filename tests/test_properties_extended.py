"""Property-based tests for the extended policies, invoker, and cluster.

Complements ``test_properties.py`` with the components added beyond
the paper's core: the wider policy family must uphold the same
conservation and capacity invariants, the simulated invoker must
account for every request exactly once with sane latencies, and the
analytical models must stay within their mathematical envelopes.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulation import ClusterSimulator
from repro.core.policies import EXTENDED_POLICIES, create_policy
from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.openwhisk.latency import ColdStartModel
from repro.provisioning.analytical import (
    FunctionArrivalModel,
    characteristic_time,
    lru_hit_ratio,
    ttl_expected_memory_mb,
    ttl_hit_ratio,
)
from repro.sim.scheduler import KeepAliveSimulator
from tests.test_properties import traces

extended_policy_names = st.sampled_from(EXTENDED_POLICIES)


@settings(deadline=None, max_examples=40)
@given(traces(), extended_policy_names, st.floats(min_value=64.0, max_value=8192.0))
def test_extended_policies_conservation_and_capacity(
    trace, policy_name, memory_mb
):
    policy = create_policy(policy_name)
    sim = KeepAliveSimulator(trace, policy, memory_mb)
    functions = trace.functions
    for inv in trace:
        sim.process_invocation(functions[inv.function_name], inv.time_s)
        assert sim.pool.used_mb <= sim.pool.capacity_mb + 1e-6
    m = sim.metrics
    assert m.warm_starts + m.cold_starts + m.dropped == len(trace)
    assert m.actual_exec_time_s >= m.ideal_exec_time_s - 1e-9


@settings(deadline=None, max_examples=25)
@given(
    traces(max_len=60),
    st.sampled_from(["TTL", "GD", "LRU", "ARC"]),
    st.floats(min_value=256.0, max_value=4096.0),
    st.integers(min_value=1, max_value=8),
)
def test_invoker_accounts_for_every_request(
    trace, policy_name, memory_mb, cores
):
    config = InvokerConfig(
        memory_mb=memory_mb,
        cpu_cores=cores,
        request_timeout_s=30.0,
        max_concurrent_launches=2,
    )
    invoker = SimulatedInvoker(config, policy=policy_name)
    result = invoker.run(trace)
    assert result.total == len(trace)
    assert result.served + result.dropped == result.total
    model = ColdStartModel()
    for record in result.records:
        assert record.outcome in ("hit", "miss", "dropped")
        if record.outcome == "dropped":
            assert record.completion_s is None
            continue
        assert record.start_s is not None
        assert record.start_s >= record.arrival_s - 1e-9
        function = trace.functions[record.function_name]
        floor = (
            model.warm_duration_s(function)
            if record.outcome == "hit"
            else model.cold_duration_s(function)
        )
        assert record.latency_s >= floor - 1e-6


@settings(deadline=None, max_examples=20)
@given(
    traces(max_len=60),
    st.sampled_from(["random", "round-robin", "hash-affinity", "least-loaded"]),
    st.integers(min_value=1, max_value=5),
)
def test_cluster_routes_and_conserves(trace, balancer, num_servers):
    result = ClusterSimulator(
        trace, balancer, num_servers=num_servers, server_memory_mb=4096.0
    ).run()
    assert sum(result.routed) == len(trace)
    assert result.served + result.dropped == len(trace)
    assert 0.0 <= result.cold_start_pct <= 100.0


@st.composite
def arrival_models(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    return [
        FunctionArrivalModel(
            name=f"f{i}",
            rate_per_s=draw(st.floats(min_value=1e-4, max_value=10.0)),
            size_mb=draw(st.floats(min_value=1.0, max_value=4096.0)),
        )
        for i in range(n)
    ]


@given(arrival_models(), st.floats(min_value=0.0, max_value=1e5))
def test_ttl_model_envelope(models, ttl_s):
    occupancy = ttl_expected_memory_mb(models, ttl_s)
    working_set = sum(m.size_mb for m in models)
    assert -1e-9 <= occupancy <= working_set + 1e-9
    hr = ttl_hit_ratio(models, ttl_s)
    assert -1e-12 <= hr <= 1.0 + 1e-12


@given(arrival_models(), st.floats(min_value=0.01, max_value=0.99))
def test_characteristic_time_fixed_point(models, fraction):
    working_set = sum(m.size_mb for m in models)
    cache = fraction * working_set
    t_c = characteristic_time(models, cache)
    if math.isinf(t_c):
        assert cache >= working_set - 1e-6
    else:
        assert ttl_expected_memory_mb(models, t_c) == (
            __import__("pytest").approx(cache, rel=1e-5)
        )
    hr = lru_hit_ratio(models, cache)
    assert 0.0 <= hr <= 1.0


@given(
    arrival_models(),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_lru_hit_ratio_monotone_in_cache(models, f1, f2):
    working_set = sum(m.size_mb for m in models)
    small, large = sorted((f1, f2))
    hr_small = lru_hit_ratio(models, small * working_set)
    hr_large = lru_hit_ratio(models, large * working_set)
    assert hr_small <= hr_large + 1e-9


@settings(deadline=None, max_examples=15)
@given(traces(max_len=50), st.floats(min_value=256.0, max_value=8192.0))
def test_sla_percentiles_bounded_by_cold_time(trace, memory_mb):
    """Response-time percentiles never exceed the worst cold time."""
    from repro.provisioning.sla import response_time_percentiles

    if len(trace) == 0:
        return
    percentiles = response_time_percentiles(trace, "GD", memory_mb, q=100.0)
    for name, value in percentiles.items():
        function = trace.functions[name]
        assert function.warm_time_s - 1e-9 <= value <= function.cold_time_s + 1e-9


@settings(deadline=None, max_examples=10)
@given(traces(max_len=60))
def test_elastic_cluster_conserves(trace):
    from repro.cluster.elastic import ElasticClusterSimulation

    result = ElasticClusterSimulation(
        trace,
        server_memory_mb=4096.0,
        requests_per_server_per_s=5.0,
        control_period_s=60.0,
        max_servers=4,
    ).run()
    assert result.served + result.dropped == len(trace)
    assert result.mean_servers >= 1.0 or len(trace) == 0


@settings(deadline=None, max_examples=20)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30
    ),
    st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30
    ),
)
def test_line_plot_never_crashes(xs, ys):
    from repro.analysis.reporting import format_line_plot

    n = min(len(xs), len(ys))
    text = format_line_plot(xs[:n], {"S": ys[:n]})
    assert "S=S" in text

"""Tests for the determinism & invariant linter (repro.checks).

Every rule is exercised twice through the fixtures under
``tests/fixtures/checks/``: the ``*_bad.py`` file must trigger exactly
its own rule code (and nothing else), the ``*_good.py`` twin must be
clean. On top of that the whole repository must lint clean — the same
gate the CI ``check`` job enforces.
"""

import pathlib

import pytest

from repro.checks.linter import (
    RULES,
    check_paths,
    format_finding,
    module_name_for,
)
from repro.cli import main as cli_main

REPO = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "checks"
CODES = sorted(RULES)


class TestFixtures:
    @pytest.mark.parametrize("code", CODES)
    def test_bad_fixture_triggers_exactly_its_rule(self, code):
        path = FIXTURES / f"{code.lower()}_bad.py"
        result = check_paths([path], include_fixtures=True)
        assert result.findings, f"{path} produced no findings"
        assert {f.code for f in result.findings} == {code}

    @pytest.mark.parametrize("code", CODES)
    def test_good_fixture_is_clean(self, code):
        path = FIXTURES / f"{code.lower()}_good.py"
        result = check_paths([path], include_fixtures=True)
        rendered = "\n".join(format_finding(f) for f in result.findings)
        assert result.ok, f"{path} should be clean:\n{rendered}"

    def test_every_rule_has_a_fixture_pair(self):
        for code in CODES:
            assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
            assert (FIXTURES / f"{code.lower()}_good.py").is_file()


class TestSelfClean:
    def test_repo_lints_clean(self):
        result = check_paths([REPO / "src", REPO / "tests"])
        rendered = "\n".join(format_finding(f) for f in result.findings)
        assert result.ok, f"repository must lint clean:\n{rendered}"
        # The walk must actually have covered the project (a path typo
        # would vacuously pass).
        assert result.files_checked > 100

    def test_fixtures_excluded_from_directory_walks(self):
        result = check_paths([REPO / "tests"])
        fixture_hits = [
            f for f in result.findings if "fixtures/checks" in f.path
        ]
        assert fixture_hits == []


class TestScoping:
    def test_module_name_derived_from_packages(self):
        path = REPO / "src" / "repro" / "sim" / "scheduler.py"
        name = module_name_for(path, path.read_text())
        assert name == "repro.sim.scheduler"

    def test_pragma_overrides_module_name(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("# repro-checks-module: repro.sim.custom\n")
        assert module_name_for(path, path.read_text()) == "repro.sim.custom"

    def test_scoped_rules_skip_unscoped_files(self, tmp_path):
        # Wall-clock reads are fine outside the deterministic packages
        # (scripts, benchmarks, tests).
        path = tmp_path / "script.py"
        path.write_text(
            "import time\n\n\ndef now():\n    return time.time()\n"
        )
        assert check_paths([path]).ok

    def test_core_clock_is_the_allowed_definer(self):
        clock = REPO / "src" / "repro" / "core" / "clock.py"
        result = check_paths([clock])
        assert result.ok, [format_finding(f) for f in result.findings]


class TestSuppression:
    def _violating(self, tmp_path, trailer=""):
        path = tmp_path / "snippet.py"
        path.write_text(
            "# repro-checks-module: repro.sim.snippet\n"
            "import time\n\n\n"
            f"def now():\n    return time.time(){trailer}\n"
        )
        return path

    def test_noqa_with_code_suppresses(self, tmp_path):
        path = self._violating(tmp_path, "  # noqa: FC001")
        result = check_paths([path])
        assert result.ok
        assert [f.code for f in result.suppressed] == ["FC001"]

    def test_bare_noqa_suppresses(self, tmp_path):
        path = self._violating(tmp_path, "  # noqa")
        result = check_paths([path])
        assert result.ok
        assert len(result.suppressed) == 1

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        path = self._violating(tmp_path, "  # noqa: FC008")
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC001"]
        assert result.suppressed == []


class TestSymbolTable:
    def test_schema_defined_in_checked_set_wins(self, tmp_path):
        # A file set that declares its own (restricted) event
        # vocabulary is judged against it, not the canonical one.
        path = tmp_path / "schema.py"
        path.write_text(
            'EVENT_SCHEMAS = {"ping": {}}\n\n\n'
            'def go(tracer):\n    tracer.emit("warm_hit", 0.0)\n'
        )
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC004"]

    def test_select_restricts_rules(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "# repro-checks-module: repro.sim.snippet\n"
            "import time\n\n\n"
            "def now(acc=[]):\n    acc.append(time.time())\n    return acc\n"
        )
        result = check_paths([path], select={"FC008"})
        assert [f.code for f in result.findings] == ["FC008"]


class TestCli:
    def test_check_bad_fixture_exits_nonzero(self, capsys):
        code = cli_main(
            ["check", str(FIXTURES / "fc001_bad.py"), "--include-fixtures"]
        )
        assert code == 1
        assert "FC001" in capsys.readouterr().out

    def test_check_repo_exits_zero(self, capsys):
        code = cli_main(
            ["check", str(REPO / "src"), str(REPO / "tests"), "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

"""Tests for the extended policy family: GDS, ARC, SLRU, LRU-K, baselines."""

import pytest

from repro.core.container import Container
from repro.core.policies import EXTENDED_POLICIES, available_policies, create_policy
from repro.core.policies.arc import ARCPolicy
from repro.core.policies.baselines import FIFOPolicy, RandomPolicy
from repro.core.policies.gds import GreedyDualSizePolicy
from repro.core.policies.lruk import LRUKPolicy
from repro.core.policies.slru import SegmentedLRUPolicy
from repro.core.pool import ContainerPool
from repro.sim.scheduler import simulate
from repro.traces.synth import cyclic_trace
from tests.conftest import make_function, make_trace


def cold_start(policy, pool, function, now):
    policy.on_invocation(function, now)
    container = Container(function, now)
    pool.add(container)
    container.start_invocation(now, function.cold_time_s)
    policy.on_cold_start(container, now, pool)
    container.finish_invocation(now + function.cold_time_s)
    return container


def warm_hit(policy, pool, container, now):
    function = container.function
    policy.on_invocation(function, now)
    container.start_invocation(now, function.warm_time_s)
    policy.on_warm_start(container, now, pool)
    container.finish_invocation(now + function.warm_time_s)


class TestRegistry:
    def test_extended_policies_registered(self):
        names = available_policies()
        for expected in EXTENDED_POLICIES:
            assert expected in names

    def test_all_run_in_simulator(self):
        trace = make_trace("ABCABCBCA" * 5, gap_s=2.0)
        for name in EXTENDED_POLICIES:
            result = simulate(trace, name, 512.0)
            m = result.metrics
            assert m.warm_starts + m.cold_starts + m.dropped == len(trace)


class TestGDS:
    def test_value_term_ignores_frequency(self):
        policy = GreedyDualSizePolicy()
        pool = ContainerPool(10_000.0)
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        c = cold_start(policy, pool, f, 0.0)
        p1 = c.priority
        warm_hit(policy, pool, c, 10.0)
        assert c.priority == pytest.approx(p1)  # frequency-blind

    def test_pins_like_gd_on_cyclic(self):
        trace = cyclic_trace(num_functions=12, num_cycles=50)
        gds = simulate(trace, "GDS", 2304.0).metrics
        lru = simulate(trace, "LRU", 2304.0).metrics
        assert gds.warm_starts > lru.warm_starts


class TestLRUK:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            LRUKPolicy(k=0)

    def test_one_timers_evicted_before_established(self):
        policy = LRUKPolicy(k=2)
        pool = ContainerPool(300.0)
        regular = make_function("R", memory_mb=100.0)
        scan = make_function("S", memory_mb=100.0)
        cr = cold_start(policy, pool, regular, 0.0)
        warm_hit(policy, pool, cr, 10.0)  # two references: established
        cs = cold_start(policy, pool, scan, 20.0)  # single reference
        # Scan is more recent, but LRU-K evicts it first.
        victims = policy.select_victims(pool, 150.0, 30.0)
        assert victims == [cs]

    def test_among_established_oldest_kth_reference_goes(self):
        policy = LRUKPolicy(k=2)
        pool = ContainerPool(300.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        ca = cold_start(policy, pool, a, 0.0)
        cb = cold_start(policy, pool, b, 5.0)
        warm_hit(policy, pool, ca, 10.0)  # A's 2nd ref at t=0 -> K-dist 0
        warm_hit(policy, pool, cb, 20.0)  # B's 2nd ref at t=5 -> K-dist 5
        victims = policy.select_victims(pool, 150.0, 30.0)
        assert victims == [ca]

    def test_reset(self):
        policy = LRUKPolicy()
        policy.on_invocation(make_function("A"), 0.0)
        policy.reset()
        assert policy._history == {}


class TestSLRU:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            SegmentedLRUPolicy(protected_fraction=1.0)

    def test_cold_admission_is_probationary(self):
        policy = SegmentedLRUPolicy()
        pool = ContainerPool(1000.0)
        c = cold_start(policy, pool, make_function("A"), 0.0)
        assert not policy.is_protected(c)

    def test_hit_promotes_to_protected(self):
        policy = SegmentedLRUPolicy()
        pool = ContainerPool(1000.0)
        c = cold_start(policy, pool, make_function("A"), 0.0)
        warm_hit(policy, pool, c, 10.0)
        assert policy.is_protected(c)

    def test_probationary_evicted_before_protected(self):
        policy = SegmentedLRUPolicy()
        pool = ContainerPool(300.0)
        hot = cold_start(policy, pool, make_function("H", memory_mb=100.0), 0.0)
        warm_hit(policy, pool, hot, 5.0)
        scan = cold_start(policy, pool, make_function("S", memory_mb=100.0), 50.0)
        # Scan is far more recent, yet probationary goes first.
        victims = policy.select_victims(pool, 150.0, 60.0)
        assert victims == [scan]

    def test_protected_overflow_demotes_lru_tail(self):
        policy = SegmentedLRUPolicy(protected_fraction=0.4)
        pool = ContainerPool(500.0)  # protected budget: 200 MB
        a = cold_start(policy, pool, make_function("A", memory_mb=100.0), 0.0)
        b = cold_start(policy, pool, make_function("B", memory_mb=100.0), 1.0)
        c = cold_start(policy, pool, make_function("C", memory_mb=100.0), 2.0)
        warm_hit(policy, pool, a, 10.0)
        warm_hit(policy, pool, b, 20.0)
        assert policy.is_protected(a) and policy.is_protected(b)
        warm_hit(policy, pool, c, 30.0)  # exceeds budget: A demoted
        assert not policy.is_protected(a)
        assert policy.is_protected(b) and policy.is_protected(c)

    def test_eviction_cleans_state(self):
        policy = SegmentedLRUPolicy()
        pool = ContainerPool(1000.0)
        c = cold_start(policy, pool, make_function("A"), 0.0)
        pool.evict(c)
        policy.on_evict(c, 1.0, pool, pressure=True)
        assert c.container_id not in policy._protected


class TestARC:
    def test_first_admission_goes_to_t1(self):
        policy = ARCPolicy()
        pool = ContainerPool(1000.0)
        cold_start(policy, pool, make_function("A"), 0.0)
        assert "A" in policy._t1
        assert "A" not in policy._t2

    def test_hit_promotes_to_t2(self):
        policy = ARCPolicy()
        pool = ContainerPool(1000.0)
        c = cold_start(policy, pool, make_function("A"), 0.0)
        warm_hit(policy, pool, c, 10.0)
        assert "A" in policy._t2
        assert "A" not in policy._t1

    def test_pressure_eviction_creates_ghost(self):
        policy = ARCPolicy()
        pool = ContainerPool(200.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        ca = cold_start(policy, pool, a, 0.0)
        cb = cold_start(policy, pool, b, 1.0)
        big = make_function("BIG", memory_mb=200.0)
        policy.on_invocation(big, 5.0)
        victims = policy.select_victims(pool, 200.0, 5.0)
        assert victims is not None
        for v in victims:
            pool.evict(v)
            policy.on_evict(v, 5.0, pool, pressure=True)
        assert "A" in policy._b1 and "B" in policy._b1

    def test_ghost_hit_adapts_p(self):
        policy = ARCPolicy()
        pool = ContainerPool(200.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        ca = cold_start(policy, pool, a, 0.0)
        cold_start(policy, pool, b, 1.0)
        # Evict A under pressure -> ghost in B1.
        pool.evict(ca)
        policy.on_evict(ca, 2.0, pool, pressure=True)
        assert "A" in policy._b1
        p_before = policy.p_mb
        cold_start(policy, pool, a, 10.0)
        assert policy.p_mb > p_before
        assert "A" in policy._t2  # ghost re-admission lands in T2

    def test_b2_ghost_hit_shrinks_p(self):
        policy = ARCPolicy()
        pool = ContainerPool(1000.0)
        a = make_function("A", memory_mb=100.0)
        policy.p_mb = 500.0
        policy._b2["A"] = a.memory_mb
        cold_start(policy, pool, a, 0.0)
        assert policy.p_mb < 500.0

    def test_expiry_style_eviction_makes_no_ghost(self):
        policy = ARCPolicy()
        pool = ContainerPool(1000.0)
        c = cold_start(policy, pool, make_function("A"), 0.0)
        pool.evict(c)
        policy.on_evict(c, 1.0, pool, pressure=False)
        assert "A" not in policy._b1 and "A" not in policy._b2

    def test_scan_resistance(self):
        """A one-pass scan of many functions must not flush an
        established, frequently-hit working set."""
        from repro.traces.model import Invocation, Trace, TraceFunction

        working = [
            TraceFunction(f"w{i}", 100.0, 1.0, 3.0) for i in range(4)
        ]
        scan = [TraceFunction(f"s{i}", 100.0, 1.0, 3.0) for i in range(30)]
        invocations = []
        t = 0.0
        # Establish the working set (two rounds -> all in T2).
        for __ in range(4):
            for f in working:
                invocations.append(Invocation(t, f.name))
                t += 5.0
        # One-pass scan.
        for f in scan:
            invocations.append(Invocation(t, f.name))
            t += 5.0
        # Working set again.
        for f in working:
            invocations.append(Invocation(t, f.name))
            t += 5.0
        trace = Trace(working + scan, invocations)
        arc = simulate(trace, "ARC", 800.0).metrics
        lru = simulate(trace, "LRU", 800.0).metrics
        # ARC keeps the working set warm through the scan; LRU flushes it.
        final_warm_arc = sum(
            arc.per_function[f.name].warm for f in working
        )
        final_warm_lru = sum(
            lru.per_function[f.name].warm for f in working
        )
        assert final_warm_arc > final_warm_lru

    def test_reset(self):
        policy = ARCPolicy()
        pool = ContainerPool(1000.0)
        cold_start(policy, pool, make_function("A"), 0.0)
        policy.p_mb = 10.0
        policy.reset()
        assert not policy._t1 and not policy._t2
        assert policy.p_mb == 0.0


class TestBaselines:
    def test_fifo_evicts_by_creation_order(self):
        policy = FIFOPolicy()
        pool = ContainerPool(300.0)
        a = cold_start(policy, pool, make_function("A", memory_mb=100.0), 0.0)
        b = cold_start(policy, pool, make_function("B", memory_mb=100.0), 5.0)
        warm_hit(policy, pool, a, 50.0)  # recency must not matter
        victims = policy.select_victims(pool, 200.0, 60.0)
        assert victims == [a]

    def test_random_is_deterministic_per_seed(self):
        p1, p2 = RandomPolicy(seed=3), RandomPolicy(seed=3)
        c = Container(make_function("A"), 0.0)
        assert p1.priority(c, 0.0) == p2.priority(c, 0.0)

    def test_random_seed_changes_order(self):
        pool = ContainerPool(1000.0)
        containers = [
            cold_start(RandomPolicy(), pool, make_function(f"f{i}", memory_mb=10.0), 0.0)
            for i in range(20)
        ]
        order_a = sorted(containers, key=lambda c: RandomPolicy(seed=1).priority(c, 0))
        order_b = sorted(containers, key=lambda c: RandomPolicy(seed=2).priority(c, 0))
        assert [c.container_id for c in order_a] != [
            c.container_id for c in order_b
        ]

"""The fault-injection/recovery layer (`repro.faults`).

The contract under test, end to end:

* a fault spec is a validated, serializable frozen value; a disabled
  one is indistinguishable from no spec at all;
* every fault decision is a pure function of the seed and the
  decision's coordinates — same spec, same answers, any order, any
  process;
* the simulator's injection, retry, and shed paths feed the metrics
  and event-stream counters consistently;
* whole-server failure and recovery work standalone (cluster-driven)
  and from the spec's outage schedule.
"""

import dataclasses
import json

import pytest

from repro.core.policies import create_policy
from repro.faults import (
    FaultModel,
    FaultSpec,
    RetryPolicy,
    ServerDowntime,
    cell_fault_spec,
    derive_seed,
    load_fault_spec,
)
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.synth import skewed_frequency_trace
from tests.conftest import make_trace

#: A spec hot enough to exercise every injection/recovery path on the
#: short synthetic traces used below.
CHAOS = FaultSpec(
    seed=11,
    spawn_failure_rate=0.05,
    crash_rate=0.03,
    timeout_rate=0.02,
    server_downtimes=((0, 200.0, 260.0),),
    max_retries=2,
    per_function_retry_budget=10,
)


class TestFaultSpec:
    def test_defaults_are_disabled(self):
        assert not FaultSpec().enabled
        assert not FaultSpec(seed=123).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spawn_failure_rate": 0.01},
            {"crash_rate": 0.5},
            {"timeout_rate": 1.0},
            {"server_mtbf_s": 3600.0},
            {"server_downtimes": ((0, 1.0, 2.0),)},
        ],
    )
    def test_any_fault_source_enables(self, kwargs):
        assert FaultSpec(**kwargs).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spawn_failure_rate": -0.1},
            {"crash_rate": 1.5},
            {"crash_rate": 0.6, "timeout_rate": 0.6},
            {"server_mtbf_s": -1.0},
            {"server_recovery_s": 0.0},
            {"max_retries": -1},
            {"base_delay_s": 0.0},
            {"base_delay_s": 10.0, "max_delay_s": 5.0},
            {"jitter": 1.5},
            {"max_pending_retries": -1},
            {"per_function_retry_budget": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_downtime_validation(self):
        with pytest.raises(ValueError):
            ServerDowntime(-1, 0.0, 1.0)
        with pytest.raises(ValueError):
            ServerDowntime(0, 5.0, 5.0)  # empty span

    def test_downtime_entries_normalized(self):
        # Tuples, dicts, and ServerDowntime instances all coerce.
        spec = FaultSpec(
            server_downtimes=(
                (0, 1.0, 2.0),
                {"server": 1, "down_s": 3.0, "up_s": 4.0},
                ServerDowntime(2, 5.0, 6.0),
            )
        )
        assert all(isinstance(d, ServerDowntime) for d in spec.server_downtimes)
        assert spec.server_downtimes[1].server == 1

    def test_round_trip(self):
        spec = CHAOS
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-spec fields"):
            FaultSpec.from_dict({"crash_rate": 0.1, "nope": 1})

    def test_load_fault_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CHAOS.to_dict()))
        assert load_fault_spec(path) == CHAOS

    def test_load_fault_spec_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_fault_spec(path)

    def test_example_spec_loads_and_is_enabled(self):
        spec = load_fault_spec("examples/fault_spec.json")
        assert spec.enabled
        assert spec.server_downtimes  # the demo outage

    def test_cell_fault_spec_varies_only_the_seed(self):
        a = cell_fault_spec(CHAOS, "GD", 1.0)
        b = cell_fault_spec(CHAOS, "GD", 2.0)
        c = cell_fault_spec(CHAOS, "GD", 1.0)
        assert a == c
        assert a.seed != b.seed
        assert dataclasses.replace(a, seed=0) == dataclasses.replace(
            b, seed=0
        )

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(5, "x", 1) == derive_seed(5, "x", 1)
        assert derive_seed(5, "x", 1) != derive_seed(5, "x", 2)
        assert derive_seed(5, "x", 1) != derive_seed(6, "x", 1)
        # Type-tagged packing: ("a", 1) never collides with ("a1",).
        assert derive_seed(0, "a", "1") != derive_seed(0, "a1")


class TestFaultModel:
    def test_decisions_deterministic_across_models(self):
        a, b = FaultModel(CHAOS), FaultModel(CHAOS)
        for t in (0.0, 17.3, 400.0):
            for attempt in (0, 1, 2):
                assert a.spawn_fails("f", t, attempt) == b.spawn_fails(
                    "f", t, attempt
                )
                assert a.invocation_fault("f", t, attempt) == (
                    b.invocation_fault("f", t, attempt)
                )

    def test_decisions_vary_with_seed(self):
        a = FaultModel(dataclasses.replace(CHAOS, spawn_failure_rate=0.5))
        b = FaultModel(
            dataclasses.replace(CHAOS, spawn_failure_rate=0.5, seed=99)
        )
        answers_a = [a.spawn_fails("f", float(t), 0) for t in range(200)]
        answers_b = [b.spawn_fails("f", float(t), 0) for t in range(200)]
        assert answers_a != answers_b

    def test_rates_zero_never_fire(self):
        model = FaultModel(FaultSpec(server_mtbf_s=100.0))  # enabled, rates 0
        for t in range(100):
            assert not model.spawn_fails("f", float(t), 0)
            assert model.invocation_fault("f", float(t), 0) is None

    def test_rate_one_always_fires(self):
        model = FaultModel(FaultSpec(spawn_failure_rate=1.0))
        assert all(
            model.spawn_fails("f", float(t), 0) for t in range(50)
        )

    def test_empirical_rate_tracks_spec(self):
        model = FaultModel(FaultSpec(spawn_failure_rate=0.2))
        hits = sum(
            model.spawn_fails(f"fn{i}", float(t), 0)
            for i in range(20)
            for t in range(100)
        )
        assert 0.15 < hits / 2000 < 0.25

    def test_crash_timeout_partition_one_draw(self):
        model = FaultModel(FaultSpec(crash_rate=0.5, timeout_rate=0.5))
        kinds = {
            model.invocation_fault("f", float(t), 0) for t in range(100)
        }
        assert kinds == {"crash", "timeout"}  # never None at rate 1

    def test_downtime_spans_merge_overlaps(self):
        spec = FaultSpec(
            server_downtimes=((0, 10.0, 30.0), (0, 20.0, 40.0), (0, 50.0, 60.0))
        )
        assert FaultModel(spec).downtime_spans(0, 100.0) == [
            (10.0, 40.0),
            (50.0, 60.0),
        ]

    def test_downtime_spans_per_server(self):
        spec = FaultSpec(server_downtimes=((1, 10.0, 20.0),))
        model = FaultModel(spec)
        assert model.downtime_spans(0, 100.0) == []
        assert model.downtime_spans(1, 100.0) == [(10.0, 20.0)]

    def test_rate_based_spans_deterministic_and_bounded(self):
        spec = FaultSpec(server_mtbf_s=500.0, server_recovery_s=50.0)
        a = FaultModel(spec).downtime_spans(3, 10_000.0)
        b = FaultModel(spec).downtime_spans(3, 10_000.0)
        assert a == b
        assert a  # an outage is overwhelmingly likely over 20 MTBFs
        assert all(down < up for down, up in a)
        # Other servers get independent streams.
        assert FaultModel(spec).downtime_spans(4, 10_000.0) != a

    def test_server_schedule_ordering(self):
        spec = FaultSpec(
            server_downtimes=((1, 10.0, 20.0), (0, 10.0, 30.0))
        )
        schedule = FaultModel(spec).server_schedule(2, 100.0)
        times = [t for t, __, __ in schedule]
        assert times == sorted(times)
        # "up" sorts before "down" at equal times; index breaks ties.
        assert schedule[0] == (10.0, 0, "down")
        assert schedule[1] == (10.0, 1, "down")


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=1.0, max_delay_s=8.0, jitter=0.0
        )
        delays = [policy.next_delay("f", n, 0.0) for n in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(jitter=0.5, base_delay_s=4.0, max_delay_s=4.0)
        delay = policy.next_delay("f", 1, 100.0)
        # The cap bounds the *jittered* delay: with base == max the
        # stretch may pull below, never above.
        assert 4.0 * 0.75 <= delay <= 4.0
        again = RetryPolicy(jitter=0.5, base_delay_s=4.0, max_delay_s=4.0)
        assert again.next_delay("f", 1, 100.0) == delay
        # Different coordinates draw different jitter.
        assert again.next_delay("f", 2, 100.0) != delay or True

    def test_cap_bounds_jittered_delay_property(self):
        """The documented invariant: next_delay never exceeds
        max_delay_s, for any jitter setting, retry number, or retry
        identity — including when the exponential term saturates the
        cap and upward jitter used to overshoot it."""
        for jitter in (0.0, 0.1, 0.5, 1.0):
            for max_delay_s in (1.0, 4.0, 60.0):
                policy = RetryPolicy(
                    max_retries=12,
                    base_delay_s=1.0,
                    max_delay_s=max_delay_s,
                    jitter=jitter,
                    per_function_budget=10_000,
                )
                for name in ("f", "g", "h"):
                    for n in range(1, 13):
                        for failed_at_s in (0.0, 17.3, 86_400.0):
                            delay = policy.next_delay(name, n, failed_at_s)
                            assert delay is not None
                            assert 0.0 < delay <= max_delay_s, (
                                jitter, max_delay_s, name, n, failed_at_s,
                            )

    def test_max_retries_exhausted(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.next_delay("f", 2, 0.0) is not None
        assert policy.next_delay("f", 3, 0.0) is None

    def test_per_function_budget(self):
        policy = RetryPolicy(max_retries=1, per_function_budget=3)
        for __ in range(3):
            assert policy.next_delay("f", 1, 0.0) is not None
        assert policy.next_delay("f", 1, 0.0) is None  # budget gone
        assert policy.budget_remaining("f") == 0
        assert policy.next_delay("other", 1, 0.0) is not None

    def test_retry_number_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().next_delay("f", 0, 0.0)

    def test_from_spec(self):
        policy = RetryPolicy.from_spec(CHAOS)
        assert policy.max_retries == CHAOS.max_retries
        assert policy.per_function_budget == CHAOS.per_function_retry_budget
        assert policy.seed == CHAOS.seed


class TestZeroFaultBaseline:
    """A disabled spec must be *exactly* no spec."""

    @pytest.mark.parametrize("policy", ["GD", "TTL", "HIST"])
    def test_simulator_results_identical(self, policy):
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        base = simulate(trace, policy, 512.0)
        nulled = simulate(trace, policy, 512.0, fault_spec=FaultSpec(seed=9))
        assert base.metrics.summary() == nulled.metrics.summary()
        assert base.metrics.counters() == nulled.metrics.counters()

    def test_disabled_spec_stores_none(self):
        sim = KeepAliveSimulator(
            make_trace("AB", gap_s=1.0), create_policy("GD"), 1024.0,
            fault_spec=FaultSpec(),
        )
        assert sim._faults is None


class TestInjectionAndRecovery:
    def run_chaos(self, spec=CHAOS, policy="GD", memory_mb=512.0):
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        return simulate(trace, policy, memory_mb, fault_spec=spec)

    def test_counters_populated(self):
        metrics = self.run_chaos().metrics
        assert metrics.faults_injected > 0
        assert metrics.retries > 0
        assert metrics.sheds > 0
        assert metrics.server_downs == 1
        assert metrics.downtime_s == pytest.approx(60.0)
        assert set(metrics.faults_by_kind) <= {
            "spawn_failure", "crash", "timeout"
        }
        assert sum(metrics.faults_by_kind.values()) == metrics.faults_injected
        assert sum(metrics.sheds_by_reason.values()) == metrics.sheds
        assert 0.0 < metrics.shed_ratio < 1.0

    def test_deterministic_across_runs(self):
        a = self.run_chaos().metrics
        b = self.run_chaos().metrics
        assert a.summary() == b.summary()
        assert a.counters() == b.counters()
        assert a.faults_by_kind == b.faults_by_kind
        assert a.sheds_by_reason == b.sheds_by_reason

    def test_timeout_keeps_container_crash_kills_it(self):
        # Pure-timeout chaos evicts nothing; pure-crash chaos must
        # tear containers down with reason "failure" (visible as
        # faults but not as evictions/expirations).
        timeout_only = self.run_chaos(
            FaultSpec(seed=3, timeout_rate=0.2), memory_mb=8192.0
        ).metrics
        assert timeout_only.faults_injected > 0
        assert timeout_only.evictions == 0
        assert timeout_only.expirations == 0

        crash_only = self.run_chaos(
            FaultSpec(seed=3, crash_rate=0.2), memory_mb=8192.0
        ).metrics
        assert crash_only.faults_by_kind.get("crash", 0) > 0
        # Crashed containers die as "failure" evictions, which count
        # toward neither cache-policy counter.
        assert crash_only.evictions == 0
        assert crash_only.expirations == 0

    def test_retry_can_recover(self):
        # Low fault rate + generous retries: most faulted invocations
        # eventually serve, so served + sheds + dropped covers every
        # arrival and sheds stay well below faults.
        result = self.run_chaos(
            FaultSpec(seed=5, crash_rate=0.05, max_retries=5,
                      per_function_retry_budget=10_000),
            memory_mb=8192.0,
        )
        metrics = result.metrics
        assert metrics.retries > 0
        assert metrics.sheds < metrics.faults_injected

    def test_zero_retries_shed_immediately(self):
        metrics = self.run_chaos(
            FaultSpec(seed=5, crash_rate=0.1, max_retries=0),
            memory_mb=8192.0,
        ).metrics
        assert metrics.retries == 0
        assert metrics.sheds == metrics.faults_injected
        assert metrics.sheds_by_reason == {"retry_budget": metrics.sheds}

    def test_fail_recover_server_without_spec(self):
        # The cluster layers drive outages on spec-less members.
        trace = make_trace("ABAB", gap_s=10.0)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 8192.0)
        functions = trace.functions
        sim.process_invocation(functions["A"], 0.0)
        assert not sim.is_down
        sim.fail_server(5.0)
        assert sim.is_down
        sim.fail_server(6.0)  # idempotent
        assert sim.metrics.server_downs == 1
        assert sim.process_invocation(functions["A"], 7.0) == "shed"
        assert sim.metrics.sheds_by_reason == {"unavailable": 1}
        sim.recover_server(9.0)
        assert not sim.is_down
        assert sim.metrics.downtime_s == pytest.approx(4.0)
        # Warm state was lost: the next invocation cold-starts.
        assert sim.process_invocation(functions["A"], 10.0) == "cold"

    def test_outage_evicts_warm_but_not_pinned(self):
        trace = make_trace("AB", gap_s=1.0)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 8192.0,
            reserved_concurrency={"B": 1},
        )
        functions = trace.functions
        sim.process_invocation(functions["A"], 0.0)
        sim.fail_server(100.0)  # A's container is idle by now
        assert sim.pool.idle_containers() == []
        # The pinned B container survived the outage.
        assert any(c.pinned for c in sim.pool.all_containers())

    def test_warmup_gates_fault_counters(self):
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        full = simulate(trace, "GD", 512.0, fault_spec=CHAOS).metrics
        gated = simulate(
            trace, "GD", 512.0, fault_spec=CHAOS, warmup_s=300.0
        ).metrics
        assert gated.faults_injected < full.faults_injected
        assert gated.sheds < full.sheds


class TestFaultedSweeps:
    def test_serial_parallel_identical(self):
        from repro.sim.parallel import run_sweep_parallel
        from repro.sim.sweep import run_sweep

        trace = make_trace("ABCDABCDBCAD" * 20, gap_s=2.0)
        spec = dataclasses.replace(CHAOS, server_downtimes=())
        grid = [0.5, 1.0]
        policies = ("GD", "TTL")
        sequential = run_sweep(trace, grid, policies=policies, fault_spec=spec)
        parallel = run_sweep_parallel(
            trace, grid, policies=policies, max_workers=2, fault_spec=spec
        )
        assert parallel.points == sequential.points
        assert (
            parallel.points[0].counters == sequential.points[0].counters
        )
        totals = sequential.total_counters()
        assert totals["faults_injected"] > 0

    def test_cells_see_independent_faults(self):
        from repro.sim.sweep import run_sweep

        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        spec = dataclasses.replace(CHAOS, server_downtimes=())
        sweep = run_sweep(
            trace, [1.0, 2.0], policies=("GD",), fault_spec=spec
        )
        a, b = sweep.points
        # Same rates, different derived seeds: the realized fault
        # counts should differ between cells.
        assert a.counters["faults_injected"] != b.counters["faults_injected"]

"""Tests for static provisioning, the controller, deflation, and autoscale."""

import pytest

from repro.core.container import Container
from repro.core.policies import create_policy
from repro.core.pool import ContainerPool
from repro.provisioning.autoscale import AutoscaledSimulation
from repro.provisioning.controller import ProportionalController
from repro.provisioning.deflation import DeflationEngine
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.static_provisioning import (
    StaticProvisioner,
    curve_from_trace,
)
from repro.traces.synth import cyclic_trace
from tests.conftest import make_function, make_trace


def simple_curve():
    """HR: 0.25@100, 0.5@200, 0.75@300, 1.0@400."""
    return HitRatioCurve.from_distances([100.0, 200.0, 300.0, 400.0])


class TestStaticProvisioner:
    def test_target_hit_ratio_strategy(self):
        p = StaticProvisioner(simple_curve(), target_hit_ratio=0.75)
        decision = p.decide()
        assert decision.memory_mb == 300.0
        assert decision.predicted_hit_ratio == pytest.approx(0.75)
        assert decision.strategy == "target-hit-ratio"

    def test_unreachable_target_falls_back_to_working_set(self):
        curve = HitRatioCurve.from_distances([100.0, float("inf")])
        p = StaticProvisioner(curve, target_hit_ratio=0.9)
        assert p.decide().memory_mb == 100.0

    def test_inflection_strategy(self):
        distances = [10.0] * 50 + [5000.0, 9000.0]
        curve = HitRatioCurve.from_distances(distances)
        p = StaticProvisioner(curve, strategy="inflection")
        decision = p.decide()
        assert decision.memory_mb < 5000.0
        assert decision.predicted_hit_ratio > 0.9

    def test_headroom(self):
        p = StaticProvisioner(
            simple_curve(), target_hit_ratio=0.5, headroom_fraction=0.1
        )
        assert p.decide().memory_mb == pytest.approx(220.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            StaticProvisioner(simple_curve(), strategy="vibes")

    def test_curve_from_trace(self):
        curve = curve_from_trace(make_trace("ABAB"))
        assert 0.0 < curve.max_hit_ratio <= 1.0

    def test_decision_memory_gb(self):
        p = StaticProvisioner(simple_curve(), target_hit_ratio=0.5)
        assert p.decide().memory_gb == pytest.approx(200.0 / 1024.0)


class TestProportionalController:
    def make_controller(self, **kwargs):
        defaults = dict(
            curve=simple_curve(),
            target_miss_speed=1.0,
            initial_size_mb=200.0,
            control_period_s=100.0,
            ewma_alpha=1.0,  # no smoothing: deterministic tests
        )
        defaults.update(kwargs)
        return ProportionalController(**defaults)

    def test_within_deadband_no_resize(self):
        c = self.make_controller(deadband=0.3)
        # miss speed 1.2/s vs target 1.0/s: 20% error, inside deadband.
        decision = c.step(100.0, arrivals_in_period=400, cold_starts_in_period=120)
        assert not decision.resized
        assert c.cache_size_mb == 200.0

    def test_miss_speed_above_target_grows_cache(self):
        c = self.make_controller()
        # arrivals 400 -> rate 4/s; colds 200 -> miss speed 2/s (2x target).
        decision = c.step(100.0, 400, 200)
        assert decision.resized
        # Equation 3: HR(c') = 1 - 1.0/4.0 = 0.75 -> 300 MB.
        assert c.cache_size_mb == 300.0

    def test_miss_speed_below_target_shrinks_cache(self):
        c = self.make_controller(initial_size_mb=400.0)
        # rate 4/s, colds 10 -> 0.1/s, well below target 1/s.
        decision = c.step(100.0, 400, 10)
        assert decision.resized
        assert c.cache_size_mb == 300.0  # HR target 0.75 again

    def test_low_arrival_rate_allows_minimum(self):
        c = self.make_controller(min_size_mb=50.0)
        # rate 0.5/s < target miss speed 1/s: even size 0 misses slowly
        # enough, so clamp to the minimum.
        decision = c.step(100.0, 50, 40)
        assert decision.resized
        assert c.cache_size_mb == 50.0

    def test_clamped_to_max(self):
        c = self.make_controller(max_size_mb=250.0)
        c.step(100.0, 400, 399)  # wants a huge cache
        assert c.cache_size_mb <= 250.0

    def test_history_records_every_step(self):
        c = self.make_controller()
        for i in range(5):
            c.step(100.0 * (i + 1), 100, 50)
        assert len(c.history) == 5
        assert c.resize_count() <= 5

    def test_mean_cache_size(self):
        c = self.make_controller()
        c.step(100.0, 400, 200)  # resize to 300
        c.step(200.0, 400, 100)  # 1/s == target: no resize
        assert c.mean_cache_size_mb() == pytest.approx(300.0)

    def test_from_miss_ratio_target(self):
        c = ProportionalController.from_miss_ratio_target(
            simple_curve(),
            desired_miss_ratio=0.1,
            mean_arrival_rate=10.0,
            initial_size_mb=200.0,
        )
        assert c.target_miss_speed == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalController(simple_curve(), 0.0, 100.0)
        with pytest.raises(ValueError):
            ProportionalController(
                simple_curve(), 1.0, 100.0, min_size_mb=200.0, max_size_mb=100.0
            )
        with pytest.raises(ValueError):
            ProportionalController.from_miss_ratio_target(
                simple_curve(), 1.5, 10.0, 100.0
            )


class TestDeflationEngine:
    def setup_pool(self, capacity=1000.0, idle_sizes=(200.0, 200.0, 200.0)):
        pool = ContainerPool(capacity)
        policy = create_policy("LRU")
        containers = []
        for i, mb in enumerate(idle_sizes):
            c = Container(make_function(f"f{i}", memory_mb=mb), float(i))
            c.last_used_s = float(i)
            pool.add(c)
            containers.append(c)
        return pool, policy, containers

    def test_inflation_is_free(self):
        pool, policy, __ = self.setup_pool()
        report = DeflationEngine().resize(pool, policy, 2000.0, 10.0)
        assert report.latency_s == 0.0
        assert pool.capacity_mb == 2000.0
        assert report.fully_achieved

    def test_deflation_evicts_in_priority_order(self):
        pool, policy, containers = self.setup_pool()
        report = DeflationEngine().resize(pool, policy, 350.0, 10.0)
        assert pool.capacity_mb == pytest.approx(350.0)
        assert pool.used_mb <= 350.0
        # LRU: the two oldest idle containers die first.
        assert containers[0] not in pool
        assert containers[1] not in pool
        assert containers[2] in pool
        assert report.evicted_containers == 2

    def test_running_containers_set_the_floor(self):
        pool, policy, containers = self.setup_pool()
        for c in containers:
            c.start_invocation(5.0, 100.0)
        report = DeflationEngine().resize(pool, policy, 100.0, 10.0)
        assert report.achieved_mb == pytest.approx(600.0)
        assert not report.fully_achieved
        assert pool.capacity_mb == pytest.approx(600.0)

    def test_latency_model(self):
        pool, policy, __ = self.setup_pool()
        engine = DeflationEngine(
            hot_unplug_s_per_gb=1.0, page_swap_s_per_gb=10.0, unplug_fraction=0.5
        )
        report = engine.resize(pool, policy, 1000.0 - 1024.0 * 0.5, 10.0)
        # Half a GB reclaimed: 0.25 GB unplug (0.25 s) + 0.25 GB swap (2.5 s).
        assert report.latency_s == pytest.approx(0.25 * 1.0 + 0.25 * 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeflationEngine(unplug_fraction=1.5)
        pool, policy, __ = self.setup_pool()
        with pytest.raises(ValueError):
            DeflationEngine().resize(pool, policy, 0.0, 1.0)


class TestAutoscaledSimulation:
    def test_end_to_end_controller_tracks_target(self):
        trace = cyclic_trace(num_functions=20, cycle_gap_s=2.0, num_cycles=120)
        curve = curve_from_trace(trace)
        controller = ProportionalController(
            curve,
            target_miss_speed=0.05,
            initial_size_mb=2048.0,
            control_period_s=300.0,
            max_size_mb=16_384.0,
        )
        result = AutoscaledSimulation(trace, controller, policy="GD").run()
        assert result.decisions  # controller ran
        assert result.metrics.served > 0
        # Sizes stay within the configured bounds.
        for decision in result.decisions:
            assert 128.0 <= decision.cache_size_mb <= 16_384.0

    def test_resize_applies_to_pool(self):
        trace = cyclic_trace(num_functions=10, cycle_gap_s=5.0, num_cycles=200)
        curve = curve_from_trace(trace)
        controller = ProportionalController(
            curve,
            target_miss_speed=10.0,  # absurdly lax: shrink hard
            initial_size_mb=8192.0,
            control_period_s=100.0,
            deadband=0.0,
        )
        sim = AutoscaledSimulation(trace, controller, policy="GD")
        result = sim.run()
        assert result.deflations  # at least one actuation happened
        assert sim.simulator.pool.capacity_mb < 8192.0

    def test_savings_vs_static(self):
        trace = cyclic_trace(num_functions=10, cycle_gap_s=5.0, num_cycles=100)
        curve = curve_from_trace(trace)
        controller = ProportionalController(
            curve,
            target_miss_speed=10.0,
            initial_size_mb=8192.0,
            control_period_s=100.0,
            deadband=0.0,
        )
        result = AutoscaledSimulation(trace, controller).run()
        assert result.savings_vs_static(8192.0) > 0.0
        with pytest.raises(ValueError):
            result.savings_vs_static(0.0)

    def test_timelines_align_with_decisions(self):
        trace = cyclic_trace(num_functions=8, cycle_gap_s=2.0, num_cycles=100)
        curve = curve_from_trace(trace)
        controller = ProportionalController(
            curve, target_miss_speed=0.1, initial_size_mb=2048.0,
            control_period_s=120.0,
        )
        result = AutoscaledSimulation(trace, controller).run()
        assert len(result.size_timeline()) == len(result.decisions)
        assert len(result.miss_speed_timeline()) == len(result.decisions)

"""Tests for the linter's tooling layer: SARIF output, the
incremental cache, the ``--fix`` autofixer, ``--stats-json``, and the
noqa typo guard (FC000)."""

import json
import pathlib
import textwrap

import pytest

from repro.checks.cache import CACHE_VERSION, CheckCache
from repro.checks.fixes import fix_paths, fix_source
from repro.checks.linter import RULES, check_paths, main
from repro.checks.sarif import SARIF_VERSION, to_sarif

jsonschema = pytest.importorskip("jsonschema")

SCHEMA_PATH = (
    pathlib.Path(__file__).parent / "fixtures" / "sarif-2.1.0-trimmed.schema.json"
)


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


BAD_SOURCE = """\
# repro-checks-module: repro.sim.fixture_tooling
import time


def tick():
    return time.time()
"""


class TestSarif:
    def _sarif(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        result = check_paths([path])
        assert result.findings, "fixture must produce at least one finding"
        return to_sarif(result.findings, result.suppressed)

    def test_validates_against_trimmed_schema(self, tmp_path):
        schema = json.loads(SCHEMA_PATH.read_text())
        jsonschema.validate(self._sarif(tmp_path), schema)

    def test_version_and_rule_descriptors(self, tmp_path):
        doc = self._sarif(tmp_path)
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        run = doc["runs"][0]
        ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        # Every live rule plus the FC000 pseudo-rule gets a descriptor.
        assert ids == set(RULES) | {"FC000"}

    def test_results_carry_location_and_level(self, tmp_path):
        run = self._sarif(tmp_path)["runs"][0]
        result = run["results"][0]
        assert result["ruleId"] == "FC001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_suppressed_findings_marked_in_source(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.fixture_tooling
            import time


            def tick():
                return time.time()  # noqa: FC001
            """,
        )
        result = check_paths([path])
        assert not result.findings and len(result.suppressed) == 1
        doc = to_sarif(result.findings, result.suppressed)
        run = doc["runs"][0]
        assert run["results"][0]["suppressions"][0]["kind"] == "inSource"
        jsonschema.validate(doc, json.loads(SCHEMA_PATH.read_text()))

    def test_cli_writes_sarif_file(self, tmp_path, capsys):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        out = tmp_path / "out.sarif"
        code = main(
            [str(path), "--format", "sarif", "--output", str(out), "--no-cache"]
        )
        assert code == 1
        doc = json.loads(out.read_text())
        jsonschema.validate(doc, json.loads(SCHEMA_PATH.read_text()))
        # Human summary still goes to stdout when SARIF goes to a file.
        assert "finding(s)" in capsys.readouterr().out

    def test_cli_sarif_stdout_is_pure_json(self, tmp_path, capsys):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        main([str(path), "--format", "sarif", "--no-cache", "--stats"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"


class TestIncrementalCache:
    def test_warm_run_is_finding_identical(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        cache_path = tmp_path / "cache.json"

        cache = CheckCache(cache_path)
        cold = check_paths([path], cache=cache)
        cache.save()
        assert cold.cache_hits == 0 and cold.cache_misses > 0

        cache = CheckCache(cache_path)
        warm = check_paths([path], cache=cache)
        assert warm.cache_hit_rate == 1.0
        assert [
            (f.code, f.line, f.col, f.message) for f in cold.findings
        ] == [(f.code, f.line, f.col, f.message) for f in warm.findings]

    def test_edit_invalidates_only_changed_file(self, tmp_path):
        bad = _write(tmp_path, "bad.py", BAD_SOURCE)
        clean = _write(
            tmp_path,
            "clean.py",
            """\
            # repro-checks-module: repro.sim.fixture_clean
            def nothing():
                return 0
            """,
        )
        cache_path = tmp_path / "cache.json"
        cache = CheckCache(cache_path)
        check_paths([bad, clean], cache=cache)
        cache.save()

        bad.write_text(BAD_SOURCE + "\n\nX = 1\n")
        cache = CheckCache(cache_path)
        warm = check_paths([bad, clean], cache=cache)
        assert warm.cache_hits > 0 and warm.cache_misses > 0
        assert [f.code for f in warm.findings] == ["FC001"]

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = CheckCache(cache_path)
        result = check_paths([path], cache=cache)
        cache.save()
        assert [f.code for f in result.findings] == ["FC001"]
        # And the save leaves a loadable cache behind.
        payload = json.loads(cache_path.read_text())
        assert payload["version"] == CACHE_VERSION

    def test_select_change_invalidates_findings(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        cache_path = tmp_path / "cache.json"
        cache = CheckCache(cache_path)
        assert not check_paths(
            [path], select={"FC002"}, cache=cache
        ).findings
        cache.save()
        # Same content, different select: must not replay FC002's
        # (empty) cached findings for the full-rule run.
        cache = CheckCache(cache_path)
        result = check_paths([path], cache=cache)
        assert [f.code for f in result.findings] == ["FC001"]


class TestAutofix:
    def test_fc008_and_fc007_round_trip(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.fixture_fixable
            def record(name, seen=[]):
                seen.append(name)
                return seen


            def close_enough(a, b):
                return a == 0.5
            """,
        )
        fixed = fix_paths([path])
        assert fixed == {str(path): 2}
        source = path.read_text()
        assert "seen=None" in source
        assert "if seen is None:" in source
        assert "seen = []" in source
        assert "math.isclose(a, 0.5)" in source
        assert source.splitlines()[1] == "import math"
        # The rewritten file must lint clean and stay parseable.
        assert check_paths([path]).ok

    def test_not_equal_becomes_not_isclose(self, tmp_path):
        new, n = fix_source(
            "# repro-checks-module: repro.sim.fixture_ne\n"
            "def diverged(a):\n"
            "    return a != 1.0\n",
            "repro.sim.fixture_ne",
        )
        assert n == 1
        assert "not math.isclose(a, 1.0)" in new

    def test_noqa_lines_left_alone(self, tmp_path):
        source = (
            "# repro-checks-module: repro.sim.fixture_noqa\n"
            "def record(name, seen=[]):  # noqa: FC008\n"
            "    return seen\n"
        )
        new, n = fix_source(source, "repro.sim.fixture_noqa")
        assert n == 0 and new == source

    def test_fix_is_idempotent(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.fixture_idem
            def record(name, seen=[]):
                return seen
            """,
        )
        assert fix_paths([path]) == {str(path): 1}
        once = path.read_text()
        assert fix_paths([path]) == {}
        assert path.read_text() == once


class TestStatsJson:
    def test_payload_shape(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        stats_path = tmp_path / "stats.json"
        main(
            [
                str(path),
                "--stats-json",
                str(stats_path),
                "--cache-path",
                str(tmp_path / "cache.json"),
            ]
        )
        payload = json.loads(stats_path.read_text())
        assert payload["files_checked"] == 1
        assert payload["findings"] == 1
        assert payload["suppressed"] == 0
        assert payload["findings_by_rule"] == {"FC001": 1}
        assert payload["rules"] == sorted(RULES)
        assert set(payload["cache"]) == {"hits", "misses", "hit_rate"}

    def test_cold_and_warm_agree_modulo_cache(self, tmp_path):
        path = _write(tmp_path, "mod.py", BAD_SOURCE)
        cache_path = tmp_path / "cache.json"

        def run():
            cache = CheckCache(cache_path)
            result = check_paths([path], cache=cache)
            cache.save()
            payload = result.stats_dict()
            del payload["cache"]
            return payload

        assert run() == run()


class TestNoqaGuard:
    def test_unknown_fc_code_reports_fc000(self, tmp_path):
        # The noqa comment is assembled at runtime so this test file's
        # own source never contains an unknown-code noqa line.
        path = _write(
            tmp_path,
            "mod.py",
            "# repro-checks-module: repro.sim.fixture_typo\n"
            "def nothing():\n"
            "    return 0  # noqa" + ": FC999\n",
        )
        result = check_paths([path])
        assert [f.code for f in result.findings] == ["FC000"]
        assert "FC999" in result.findings[0].message
        assert "typo" in result.findings[0].message

    def test_foreign_codes_ignored(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            # repro-checks-module: repro.sim.fixture_foreign
            def nothing(x):
                return x  # noqa: E501
            """,
        )
        assert check_paths([path]).ok

    def test_fc000_cannot_be_suppressed(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "# repro-checks-module: repro.sim.fixture_meta\n"
            "def nothing():\n"
            "    return 0  # noqa" + ": FC000, FC999\n",
        )
        result = check_paths([path])
        # Both FC000 (not a suppressible rule) and FC999 (no such
        # rule) are flagged, and neither report is itself suppressed.
        assert [f.code for f in result.findings] == ["FC000", "FC000"]
        assert not result.suppressed

"""Unit and behavioural tests for the keep-alive simulator."""

import pytest

from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_function, make_trace


class TestBasicReplay:
    def test_first_invocation_is_cold(self):
        result = simulate(make_trace("A"), "LRU", 1024.0)
        assert result.metrics.cold_starts == 1
        assert result.metrics.warm_starts == 0

    def test_reuse_is_warm(self):
        result = simulate(make_trace("AA"), "LRU", 1024.0)
        assert result.metrics.cold_starts == 1
        assert result.metrics.warm_starts == 1

    def test_each_function_pays_one_compulsory_miss(self):
        result = simulate(make_trace("ABCABC"), "LRU", 10_000.0)
        assert result.metrics.cold_starts == 3
        assert result.metrics.warm_starts == 3

    def test_result_labels(self):
        result = simulate(make_trace("A"), "GD", 2048.0)
        assert result.policy_name == "GD"
        assert result.memory_mb == 2048.0
        assert result.trace_name == "seq"

    def test_policy_instance_accepted(self):
        policy = create_policy("LRU")
        result = simulate(make_trace("AA"), policy, 1024.0)
        assert result.metrics.warm_starts == 1

    def test_policy_kwargs_with_instance_rejected(self):
        with pytest.raises(ValueError):
            simulate(make_trace("A"), create_policy("LRU"), 1024.0, ttl_s=5.0)


class TestConcurrency:
    def test_concurrent_invocations_need_extra_containers(self):
        # Two invocations of A at the same instant: the second cannot
        # reuse the busy container and goes cold.
        f = make_function("A", memory_mb=100.0, warm_time_s=10.0, cold_time_s=12.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(1.0, "A")])
        result = simulate(trace, "GD", 1024.0)
        assert result.metrics.cold_starts == 2

    def test_container_free_after_completion(self):
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(5.0, "A")])
        result = simulate(trace, "GD", 1024.0)
        assert result.metrics.warm_starts == 1

    def test_completion_uses_cold_time_for_cold_start(self):
        # Cold run is 5 s; a second arrival at t=4 finds it still busy.
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=5.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(4.0, "A")])
        result = simulate(trace, "GD", 1024.0)
        assert result.metrics.cold_starts == 2


class TestDrops:
    def test_request_dropped_when_all_containers_busy(self):
        a = make_function("A", memory_mb=600.0, warm_time_s=30.0, cold_time_s=40.0)
        b = make_function("B", memory_mb=600.0, warm_time_s=1.0, cold_time_s=2.0)
        trace = Trace([a, b], [Invocation(0.0, "A"), Invocation(1.0, "B")])
        result = simulate(trace, "GD", 1000.0)
        assert result.metrics.dropped == 1
        assert result.metrics.per_function["B"].dropped == 1

    def test_function_bigger_than_server_always_drops(self):
        f = make_function("A", memory_mb=4096.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(1.0, "A")])
        result = simulate(trace, "GD", 1024.0)
        assert result.metrics.dropped == 2

    def test_idle_containers_are_evicted_not_dropped(self):
        a = make_function("A", memory_mb=600.0, warm_time_s=1.0, cold_time_s=2.0)
        b = make_function("B", memory_mb=600.0, warm_time_s=1.0, cold_time_s=2.0)
        trace = Trace([a, b], [Invocation(0.0, "A"), Invocation(10.0, "B")])
        result = simulate(trace, "GD", 1000.0)
        assert result.metrics.dropped == 0
        assert result.metrics.evictions == 1


class TestTTLBehaviour:
    def test_ttl_expires_idle_containers(self):
        f = make_function("A")
        trace = Trace(
            [f], [Invocation(0.0, "A"), Invocation(700.0, "A")]
        )
        result = simulate(trace, "TTL", 10_000.0)
        assert result.metrics.cold_starts == 2
        assert result.metrics.expirations == 1

    def test_reuse_within_ttl_is_warm(self):
        f = make_function("A")
        trace = Trace(
            [f], [Invocation(0.0, "A"), Invocation(500.0, "A")]
        )
        result = simulate(trace, "TTL", 10_000.0)
        assert result.metrics.warm_starts == 1

    def test_resource_conserving_policies_never_expire(self):
        f = make_function("A")
        trace = Trace(
            [f], [Invocation(0.0, "A"), Invocation(100_000.0, "A")]
        )
        for policy in ("GD", "LRU", "FREQ", "SIZE", "LND"):
            result = simulate(trace, policy, 10_000.0)
            assert result.metrics.warm_starts == 1, policy
            assert result.metrics.expirations == 0, policy


class TestMetricsAccounting:
    def test_exec_time_increase(self):
        # One cold (3 s) + one warm (1 s): ideal 2 s, actual 4 s.
        result = simulate(make_trace("AA"), "LRU", 1024.0)
        m = result.metrics
        assert m.ideal_exec_time_s == pytest.approx(2.0)
        assert m.actual_exec_time_s == pytest.approx(4.0)
        assert m.exec_time_increase_pct == pytest.approx(100.0)

    def test_cold_start_pct(self):
        result = simulate(make_trace("AAAA"), "LRU", 1024.0)
        assert result.metrics.cold_start_pct == pytest.approx(25.0)

    def test_global_hit_ratio_counts_drops_as_misses(self):
        a = make_function("A", memory_mb=600.0, warm_time_s=30.0, cold_time_s=40.0)
        b = make_function("B", memory_mb=600.0, warm_time_s=1.0, cold_time_s=2.0)
        trace = Trace([a, b], [Invocation(0.0, "A"), Invocation(1.0, "B")])
        metrics = simulate(trace, "GD", 1000.0).metrics
        assert metrics.global_hit_ratio == 0.0
        assert metrics.drop_ratio == pytest.approx(0.5)

    def test_memory_timeline_tracking(self):
        result = simulate(
            make_trace("ABAB", gap_s=120.0), "GD", 10_000.0,
            track_memory_timeline=True,
        )
        timeline = result.metrics.memory_timeline
        assert timeline
        times = [t for t, __ in timeline]
        assert times == sorted(times)
        assert all(used >= 0 for __, used in timeline)

    def test_summary_keys(self):
        summary = simulate(make_trace("AA"), "GD", 1024.0).metrics.summary()
        for key in (
            "warm_starts",
            "cold_starts",
            "dropped",
            "cold_start_pct",
            "exec_time_increase_pct",
        ):
            assert key in summary


class TestEvictionCorrectness:
    def test_pool_never_exceeds_capacity(self):
        trace = make_trace("ABCABCCBA" * 20, gap_s=1.0)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), memory_mb=500.0
        )
        functions = trace.functions
        for inv in trace:
            sim.process_invocation(functions[inv.function_name], inv.time_s)
            assert sim.pool.used_mb <= sim.pool.capacity_mb + 1e-9

    def test_gd_keeps_high_value_function(self):
        # gem: small and expensive; bloat: large and cheap. Under
        # pressure GD must sacrifice the bloat.
        gem = TraceFunction("gem", 100.0, warm_time_s=1.0, cold_time_s=6.0)
        bloat = TraceFunction("bloat", 800.0, warm_time_s=1.0, cold_time_s=1.2)
        other = TraceFunction("other", 900.0, warm_time_s=1.0, cold_time_s=1.2)
        invocations = []
        t = 0.0
        for __ in range(30):
            invocations += [
                Invocation(t, "gem"),
                Invocation(t + 3.0, "bloat"),
                Invocation(t + 6.0, "other"),
            ]
            t += 9.0
        trace = Trace([gem, bloat, other], invocations)
        gd = simulate(trace, "GD", 1024.0).metrics
        # After warmup the gem should essentially always hit.
        assert gd.per_function["gem"].warm >= 28


class TestWarmupExclusion:
    def test_validation(self):
        from repro.core.policies import create_policy

        with pytest.raises(ValueError):
            KeepAliveSimulator(
                make_trace("A"), create_policy("GD"), 1024.0, warmup_s=-1.0
            )

    def test_compulsory_misses_excluded(self):
        from repro.core.policies import create_policy

        # Arrivals at 0, 10, 20, ... Warmup 15 s hides the first two.
        trace = make_trace("AAAA", gap_s=10.0)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 1024.0, warmup_s=15.0
        )
        metrics = sim.run().metrics
        assert metrics.cold_starts == 0  # the cold start was at t=0
        assert metrics.warm_starts == 2

    def test_warmup_still_populates_cache(self):
        from repro.core.policies import create_policy

        trace = make_trace("ABAB", gap_s=10.0)
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 1024.0, warmup_s=15.0
        )
        metrics = sim.run().metrics
        # Post-warmup arrivals hit containers created during warmup.
        assert metrics.warm_starts == 2
        assert metrics.cold_start_pct == 0.0

    def test_zero_warmup_matches_default(self):
        from repro.core.policies import create_policy

        trace = make_trace("ABCABC" * 5, gap_s=5.0)
        default = KeepAliveSimulator(
            trace, create_policy("GD"), 1024.0
        ).run().metrics
        explicit = KeepAliveSimulator(
            trace, create_policy("GD"), 1024.0, warmup_s=0.0
        ).run().metrics
        assert default.summary() == explicit.summary()


class TestThroughputObservability:
    def test_wall_time_recorded(self):
        metrics = simulate(make_trace("ABCABC" * 5), "GD", 1024.0).metrics
        assert metrics.wall_time_s > 0.0
        assert metrics.invocations_per_s > 0.0

    def test_invocations_per_s_consistent(self):
        metrics = simulate(make_trace("ABAB" * 10), "LRU", 1024.0).metrics
        expected = metrics.total_requests / metrics.wall_time_s
        assert metrics.invocations_per_s == pytest.approx(expected)

    def test_throughput_summary_keys(self):
        metrics = simulate(make_trace("AA"), "GD", 1024.0).metrics
        assert set(metrics.throughput_summary()) == {
            "wall_time_s",
            "invocations_per_s",
        }

    def test_summary_excludes_wall_time(self):
        """summary() equality between runs is how the conformance and
        equivalence suites compare simulations; wall time must not
        poison it."""
        metrics = simulate(make_trace("AA"), "GD", 1024.0).metrics
        assert "wall_time_s" not in metrics.summary()
        assert "invocations_per_s" not in metrics.summary()


class TestTimelineClosingSample:
    def test_final_sample_at_trace_end(self):
        trace = make_trace("AB" + "A" * 10, gap_s=30.0)
        result = simulate(
            trace, "GD", 10_000.0,
            track_memory_timeline=True, timeline_interval_s=60.0,
        )
        timeline = result.metrics.memory_timeline
        assert timeline[-1][0] == pytest.approx(trace.invocations[-1].time_s)

    def test_mean_memory_weights_tail_dwell(self):
        # Two functions, then a long quiet tail: without the closing
        # sample the mean would ignore the dwell at 512 MB entirely.
        a = make_function("A", memory_mb=256.0)
        b = make_function("B", memory_mb=256.0)
        trace = Trace(
            [a, b],
            [
                Invocation(0.0, "A"),
                Invocation(10.0, "B"),
                Invocation(1000.0, "A"),
            ],
        )
        result = simulate(
            trace, "GD", 10_000.0,
            track_memory_timeline=True, timeline_interval_s=5.0,
        )
        metrics = result.metrics
        # From t=10 on, both containers are resident (512 MB); the
        # closing sample at t=1000 makes that dwell dominate.
        assert metrics.memory_timeline[-1][0] == pytest.approx(1000.0)
        assert metrics.mean_memory_mb > 500.0

    def test_no_duplicate_sample_when_interval_aligns(self):
        trace = make_trace("AAAA", gap_s=60.0)
        result = simulate(
            trace, "GD", 10_000.0,
            track_memory_timeline=True, timeline_interval_s=60.0,
        )
        times = [t for t, __ in result.metrics.memory_timeline]
        assert times == sorted(set(times))


class TestSimulateForwarding:
    """simulate() must forward every simulator knob (a bug once
    swallowed them into policy kwargs)."""

    def test_forwards_warmup(self):
        trace = make_trace("ABAB", gap_s=10.0)
        result = simulate(trace, "GD", 1024.0, warmup_s=15.0)
        assert result.metrics.total_requests == 2

    def test_forwards_reserved_concurrency(self):
        trace = make_trace("AAA", gap_s=10.0)
        result = simulate(
            trace, "GD", 1024.0, reserved_concurrency={"A": 1}
        )
        assert result.metrics.cold_starts == 0

    def test_forwards_prewarm_effectiveness_validation(self):
        with pytest.raises(ValueError, match="effectiveness"):
            simulate(make_trace("A"), "GD", 1024.0, prewarm_effectiveness=2.0)

    def test_policy_kwargs_still_reach_policy(self):
        trace = make_trace("AB" + "B" * 5, gap_s=60.0)
        result = simulate(trace, "TTL", 10_000.0, ttl_s=30.0)
        assert result.metrics.expirations > 0

    def test_policy_kwargs_rejected_for_instances(self):
        with pytest.raises(ValueError, match="policy_kwargs"):
            simulate(
                make_trace("A"), create_policy("GD"), 1024.0, ttl_s=30.0
            )

"""Property-based tests (hypothesis) on core invariants.

These pin down the structural guarantees the paper's machinery relies
on: pool capacity safety, reuse-distance/CDF identities, Greedy-Dual
clock monotonicity, Welford-vs-two-pass equivalence, and simulator
conservation laws — across arbitrary workloads, not hand-picked ones.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import Welford
from repro.core.policies import create_policy
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import (
    reuse_distances,
    reuse_distances_naive,
)
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

function_names = st.sampled_from(["A", "B", "C", "D", "E", "F"])


@st.composite
def traces(draw, max_len=80):
    """Random traces over up to six functions with random shapes."""
    names = sorted(set(draw(st.lists(function_names, min_size=1, max_size=6))))
    functions = []
    for name in names:
        memory = draw(st.floats(min_value=16.0, max_value=2048.0))
        warm = draw(st.floats(min_value=0.01, max_value=20.0))
        init = draw(st.floats(min_value=0.0, max_value=30.0))
        functions.append(TraceFunction(name, memory, warm, warm + init))
    length = draw(st.integers(min_value=0, max_value=max_len))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=120.0),
            min_size=length,
            max_size=length,
        )
    )
    t = 0.0
    invocations = []
    for gap in gaps:
        t += gap
        invocations.append(Invocation(t, draw(st.sampled_from(names))))
    return Trace(functions, invocations)


policy_names = st.sampled_from(["GD", "TTL", "LRU", "FREQ", "SIZE", "LND", "HIST"])


# ----------------------------------------------------------------------
# Welford
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
def test_welford_matches_two_pass(data):
    w = Welford()
    for x in data:
        w.update(x)
    mean = sum(data) / len(data)
    var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    assert math.isclose(w.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(w.variance, var, rel_tol=1e-6, abs_tol=1e-3)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
)
def test_welford_merge_is_concatenation(left, right):
    a, b, c = Welford(), Welford(), Welford()
    for x in left:
        a.update(x)
        c.update(x)
    for x in right:
        b.update(x)
        c.update(x)
    merged = a.merge(b)
    assert math.isclose(merged.mean, c.mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(merged.variance, c.variance, rel_tol=1e-6, abs_tol=1e-3)


# ----------------------------------------------------------------------
# Reuse distances and hit-ratio curves
# ----------------------------------------------------------------------


@settings(deadline=None)
@given(traces())
def test_fenwick_matches_naive_reuse_distances(trace):
    fast = reuse_distances(trace)
    slow = reuse_distances_naive(trace)
    assert len(fast) == len(slow)
    for f, s in zip(fast, slow):
        if math.isinf(s):
            assert math.isinf(f)
        else:
            assert math.isclose(f, s, rel_tol=1e-9, abs_tol=1e-6)


@settings(deadline=None)
@given(traces())
def test_first_accesses_are_exactly_the_unique_functions(trace):
    distances = reuse_distances(trace)
    infinite = sum(1 for d in distances if math.isinf(d))
    unique = len({i.function_name for i in trace})
    assert infinite == unique or len(trace) == 0


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60
    )
)
def test_hit_ratio_curve_is_monotone_cdf(distances):
    curve = HitRatioCurve.from_distances(distances)
    probes = sorted(set(distances)) + [max(distances) + 1.0]
    values = [curve.hit_ratio(p) for p in [0.0] + probes]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert values == sorted(values)
    assert curve.hit_ratio(max(distances)) == 1.0


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_required_size_achieves_target(distances, target):
    curve = HitRatioCurve.from_distances(distances)
    size = curve.required_size(target)
    assert curve.hit_ratio(size) >= target - 1e-9


# ----------------------------------------------------------------------
# Simulator invariants
# ----------------------------------------------------------------------


@settings(deadline=None, max_examples=40)
@given(traces(), policy_names, st.floats(min_value=64.0, max_value=8192.0))
def test_simulator_conservation_and_capacity(trace, policy_name, memory_mb):
    policy = create_policy(policy_name)
    sim = KeepAliveSimulator(trace, policy, memory_mb)
    functions = trace.functions
    for inv in trace:
        sim.process_invocation(functions[inv.function_name], inv.time_s)
        assert sim.pool.used_mb <= sim.pool.capacity_mb + 1e-6
        assert sim.pool.used_mb >= -1e-6
    m = sim.metrics
    assert m.warm_starts + m.cold_starts + m.dropped == len(trace)
    assert m.actual_exec_time_s >= m.ideal_exec_time_s - 1e-9
    assert 0.0 <= m.cold_start_ratio <= 1.0
    assert 0.0 <= m.global_hit_ratio <= 1.0


@settings(deadline=None, max_examples=30)
@given(traces())
def test_gd_clock_never_decreases(trace):
    policy = create_policy("GD")
    sim = KeepAliveSimulator(trace, policy, 1024.0)
    functions = trace.functions
    last_clock = policy.clock.value
    for inv in trace:
        sim.process_invocation(functions[inv.function_name], inv.time_s)
        assert policy.clock.value >= last_clock
        last_clock = policy.clock.value


@settings(deadline=None, max_examples=30)
@given(traces(), st.floats(min_value=64.0, max_value=4096.0))
def test_warm_start_requires_prior_cold_start(trace, memory_mb):
    """Per function: the first served invocation can never be warm."""
    policy = create_policy("GD")
    sim = KeepAliveSimulator(trace, policy, memory_mb)
    functions = trace.functions
    seen_cold = set()
    for inv in trace:
        outcome = sim.process_invocation(
            functions[inv.function_name], inv.time_s
        )
        if outcome == "warm":
            assert inv.function_name in seen_cold
        elif outcome == "cold":
            seen_cold.add(inv.function_name)


@settings(deadline=None, max_examples=20)
@given(traces())
def test_infinite_memory_gives_one_cold_per_function_gd(trace):
    """With infinite memory and GD (resource-conserving, no
    concurrency pressure beyond busy containers), cold starts are at
    most one per function plus concurrency overlaps."""
    policy = create_policy("GD")
    sim = KeepAliveSimulator(trace, policy, 1e12)
    functions = trace.functions
    for inv in trace:
        sim.process_invocation(functions[inv.function_name], inv.time_s)
    m = sim.metrics
    assert m.dropped == 0
    assert m.evictions == 0

"""Tests for cluster-level load balancing and the cluster simulator."""

import pytest

from repro.cluster.loadbalancer import (
    HashAffinityBalancer,
    LeastLoadedBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from repro.cluster.simulation import ClusterSimulator
from tests.conftest import make_trace


class TestBalancers:
    def test_registry(self):
        for name in ("random", "round-robin", "hash-affinity", "least-loaded"):
            assert create_balancer(name, 4).name == name
        with pytest.raises(ValueError):
            create_balancer("psychic", 4)

    def test_server_count_validation(self):
        with pytest.raises(ValueError):
            RandomBalancer(0)

    def test_round_robin_cycles(self):
        lb = RoundRobinBalancer(3)
        routes = [lb.route("f", [0, 0, 0]) for __ in range(6)]
        assert routes == [0, 1, 2, 0, 1, 2]

    def test_random_in_range_and_deterministic(self):
        lb = RandomBalancer(4, seed=7)
        routes = [lb.route("f", [0] * 4) for __ in range(50)]
        assert all(0 <= r < 4 for r in routes)
        lb2 = RandomBalancer(4, seed=7)
        assert routes == [lb2.route("f", [0] * 4) for __ in range(50)]

    def test_hash_affinity_is_sticky(self):
        lb = HashAffinityBalancer(8, replicas=1)
        routes = {lb.route("my-func", [0] * 8) for __ in range(20)}
        assert len(routes) == 1

    def test_hash_affinity_replicas_rotate(self):
        lb = HashAffinityBalancer(8, replicas=3)
        routes = [lb.route("my-func", [0] * 8) for __ in range(9)]
        assert len(set(routes)) == 3
        # Strict rotation among the replica set.
        assert routes[:3] == routes[3:6] == routes[6:9]

    def test_hash_affinity_spreads_functions(self):
        lb = HashAffinityBalancer(8, replicas=1)
        routes = {lb.route(f"fn-{i}", [0] * 8) for i in range(100)}
        assert len(routes) >= 6  # most servers receive some function

    def test_hash_affinity_replica_validation(self):
        with pytest.raises(ValueError):
            HashAffinityBalancer(4, replicas=5)

    def test_least_loaded_picks_minimum(self):
        lb = LeastLoadedBalancer(3)
        assert lb.route("f", [100.0, 5.0, 50.0]) == 1

    def test_least_loaded_length_check(self):
        lb = LeastLoadedBalancer(3)
        with pytest.raises(ValueError):
            lb.route("f", [1.0])


class TestClusterSimulator:
    def test_all_invocations_routed(self):
        trace = make_trace("ABCD" * 25, gap_s=1.0)
        result = ClusterSimulator(
            trace, "round-robin", num_servers=4, server_memory_mb=2048.0
        ).run()
        assert sum(result.routed) == len(trace)
        assert result.served + result.dropped == len(trace)

    def test_single_server_matches_plain_simulator(self):
        from repro.sim.scheduler import simulate

        trace = make_trace("ABCABCBCA" * 10, gap_s=2.0)
        cluster = ClusterSimulator(
            trace, "round-robin", num_servers=1, server_memory_mb=1024.0
        ).run()
        single = simulate(trace, "GD", 1024.0).metrics
        assert cluster.cold_starts == single.cold_starts
        assert cluster.warm_starts == single.warm_starts

    def test_affinity_beats_random_on_locality(self):
        # Many functions, several servers, constrained memory: the
        # Section 9 claim — stateful routing improves keep-alive.
        sequence = []
        names = [chr(ord("A") + i) for i in range(20)]
        for round_ in range(40):
            sequence.extend(names)
        trace = make_trace("".join(sequence), gap_s=1.0)
        random_result = ClusterSimulator(
            trace, "random", num_servers=4, server_memory_mb=1280.0
        ).run()
        affinity_result = ClusterSimulator(
            trace, "hash-affinity", num_servers=4, server_memory_mb=1280.0
        ).run()
        assert (
            affinity_result.cold_start_pct < random_result.cold_start_pct
        )

    def test_balancer_instance_accepted(self):
        trace = make_trace("AB" * 5)
        lb = RoundRobinBalancer(2)
        result = ClusterSimulator(
            trace, lb, num_servers=2, server_memory_mb=1024.0
        ).run()
        assert result.balancer_name == "round-robin"

    def test_mismatched_balancer_size_rejected(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            ClusterSimulator(trace, RoundRobinBalancer(3), num_servers=2)

    def test_load_imbalance_metric(self):
        trace = make_trace("A" * 20, gap_s=100.0)
        # Affinity pins everything on one of two servers.
        result = ClusterSimulator(
            trace, "hash-affinity", num_servers=2, server_memory_mb=2048.0
        ).run()
        assert result.load_imbalance() == pytest.approx(2.0)


class TestAffinityWithSpillover:
    def test_registered(self):
        assert create_balancer("affinity-spillover", 4).name == (
            "affinity-spillover"
        )

    def test_factor_validation(self):
        from repro.cluster.loadbalancer import AffinityWithSpilloverBalancer

        with pytest.raises(ValueError):
            AffinityWithSpilloverBalancer(4, spillover_factor=1.0)

    def test_stays_home_under_balanced_load(self):
        from repro.cluster.loadbalancer import (
            AffinityWithSpilloverBalancer,
            HashAffinityBalancer,
        )

        lb = AffinityWithSpilloverBalancer(4, spillover_factor=1.5)
        home = HashAffinityBalancer(4).route("fn-x", [100.0] * 4)
        assert lb.route("fn-x", [100.0] * 4) == home
        assert lb.spillovers == 0

    def test_spills_when_home_is_hot(self):
        from repro.cluster.loadbalancer import (
            AffinityWithSpilloverBalancer,
            HashAffinityBalancer,
        )

        lb = AffinityWithSpilloverBalancer(4, spillover_factor=1.5)
        home = HashAffinityBalancer(4).route("fn-x", [0.0] * 4)
        load = [100.0] * 4
        load[home] = 1000.0  # home far above the mean
        coldest = min(range(4), key=lambda i: load[i])
        assert lb.route("fn-x", load) == coldest
        assert lb.spillovers == 1

    def test_bounds_imbalance_vs_pure_affinity(self):
        """Spillover keeps routed-load imbalance below pure affinity's
        on a skewed workload, at similar locality."""
        sequence = []
        names = [chr(ord("A") + i) for i in range(12)]
        for __ in range(60):
            sequence.extend(names)
        trace = make_trace("".join(sequence), gap_s=1.0)
        pure = ClusterSimulator(
            trace, "hash-affinity", num_servers=4, server_memory_mb=1024.0
        ).run()
        spill = ClusterSimulator(
            trace, "affinity-spillover", num_servers=4,
            server_memory_mb=1024.0,
            balancer_kwargs={"spillover_factor": 1.2},
        ).run()
        assert spill.load_imbalance() <= pure.load_imbalance() + 1e-9


class TestBalancerHealth:
    """Health-aware routing: down servers are skipped by every policy,
    restored by mark_up, and an empty healthy set raises."""

    @pytest.mark.parametrize(
        "name", ["random", "round-robin", "hash-affinity",
                 "affinity-spillover", "least-loaded"]
    )
    def test_down_server_never_routed(self, name):
        lb = create_balancer(name, 4)
        lb.mark_down(2)
        routes = {lb.route(f"fn-{i}", [10.0] * 4) for i in range(40)}
        assert 2 not in routes
        assert lb.down_servers == {2}

    @pytest.mark.parametrize(
        "name", ["random", "round-robin", "hash-affinity",
                 "affinity-spillover", "least-loaded"]
    )
    def test_all_down_raises(self, name):
        from repro.cluster.loadbalancer import NoHealthyServers

        lb = create_balancer(name, 3)
        for i in range(3):
            lb.mark_down(i)
        with pytest.raises(NoHealthyServers):
            lb.route("f", [0.0] * 3)

    def test_mark_down_validates_range(self):
        lb = create_balancer("round-robin", 3)
        with pytest.raises(ValueError):
            lb.mark_down(3)

    def test_mark_up_restores(self):
        lb = RoundRobinBalancer(2)
        lb.mark_down(0)
        assert [lb.route("f", [0, 0]) for __ in range(3)] == [1, 1, 1]
        lb.mark_up(0)
        lb.mark_up(0)  # idempotent
        assert 0 in {lb.route("f", [0, 0]) for __ in range(4)}

    def test_random_draw_sequence_unchanged_when_healthy(self):
        # The fast path must preserve the exact pre-health-awareness
        # RNG stream: a balancer that went down and came back makes
        # the same decisions as one that never did.
        lb = RandomBalancer(4, seed=7)
        lb.mark_down(1)
        lb.mark_up(1)
        baseline = RandomBalancer(4, seed=7)
        routes = [lb.route("f", [0] * 4) for __ in range(50)]
        assert routes == [baseline.route("f", [0] * 4) for __ in range(50)]

    def test_hash_affinity_reroute_deterministic_and_restoring(self):
        lb = HashAffinityBalancer(4, replicas=1)
        home = lb.route("fn-x", [0.0] * 4)
        lb.mark_down(home)
        rerouted = {lb.route("fn-x", [0.0] * 4) for __ in range(8)}
        assert len(rerouted) == 1  # deterministic fallback target
        assert home not in rerouted
        # The fallback is the next server on the hash ring.
        assert rerouted == {(home + 1) % 4}
        lb.mark_up(home)
        assert lb.route("fn-x", [0.0] * 4) == home

    def test_least_loaded_tie_break_is_lowest_index(self):
        # The documented contract: among equally-loaded healthy
        # servers, the lowest index always wins.
        lb = LeastLoadedBalancer(4)
        assert lb.route("f", [5.0, 5.0, 5.0, 5.0]) == 0
        lb.mark_down(0)
        assert lb.route("f", [5.0, 5.0, 5.0, 5.0]) == 1
        assert lb.route("g", [9.0, 3.0, 3.0, 9.0]) == 1


class TestSpilloverRouteTraced:
    """route_traced edge cases for the spillover balancer."""

    def _tracer_and_events(self):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        sink = RingBufferSink()
        return Tracer(sink, strict=True), sink

    def _home(self, num_servers, replicas=1):
        return HashAffinityBalancer(num_servers, replicas=replicas).route(
            "fn-x", [0.0] * num_servers
        )

    def test_all_replicas_over_threshold_spills_once(self):
        from repro.cluster.loadbalancer import AffinityWithSpilloverBalancer

        lb = AffinityWithSpilloverBalancer(
            4, replicas=2, spillover_factor=1.5
        )
        tracer, sink = self._tracer_and_events()
        home = self._home(4, replicas=2)
        load = [100.0] * 4
        load[home] = 1000.0
        load[(home + 1) % 4] = 1000.0  # both replicas hot
        server = lb.route_traced("fn-x", load, 1.0, tracer)
        assert load[server] == 100.0  # diverted off the hot home set
        (event,) = sink.snapshot()
        assert event["event"] == "invocation_routed"
        assert event["server"] == server
        assert event["spilled"] is True
        assert lb.spillovers == 1

    def test_single_server_ring_never_spills(self):
        from repro.cluster.loadbalancer import AffinityWithSpilloverBalancer

        lb = AffinityWithSpilloverBalancer(1, spillover_factor=1.5)
        tracer, sink = self._tracer_and_events()
        for t in range(5):
            assert lb.route_traced("fn-x", [500.0], float(t), tracer) == 0
        assert lb.spillovers == 0
        assert all(not e["spilled"] for e in sink.snapshot())

    def test_all_affinity_servers_down_reroutes(self):
        from repro.cluster.loadbalancer import AffinityWithSpilloverBalancer

        lb = AffinityWithSpilloverBalancer(
            4, replicas=2, spillover_factor=1.5
        )
        tracer, sink = self._tracer_and_events()
        home = self._home(4, replicas=2)
        lb.mark_down(home)
        lb.mark_down((home + 1) % 4)
        server = lb.route_traced("fn-x", [10.0] * 4, 1.0, tracer)
        assert server not in {home, (home + 1) % 4}
        (event,) = sink.snapshot()
        assert event["server"] == server
        assert event["spilled"] is False  # reroute, not a load spill

    def test_all_servers_down_raises_before_emitting(self):
        from repro.cluster.loadbalancer import (
            AffinityWithSpilloverBalancer,
            NoHealthyServers,
        )

        lb = AffinityWithSpilloverBalancer(2, spillover_factor=1.5)
        tracer, sink = self._tracer_and_events()
        lb.mark_down(0)
        lb.mark_down(1)
        with pytest.raises(NoHealthyServers):
            lb.route_traced("fn-x", [0.0, 0.0], 1.0, tracer)
        assert sink.snapshot() == []


class TestClusterFaults:
    """Whole-server outages driven through the cluster simulator."""

    def _trace(self):
        return make_trace("ABCDABCDBCAD" * 30, gap_s=2.0)

    def test_zero_fault_spec_matches_baseline(self):
        from repro.faults import FaultSpec

        trace = self._trace()
        base = ClusterSimulator(
            trace, "hash-affinity", num_servers=2, server_memory_mb=1024.0
        ).run()
        nulled = ClusterSimulator(
            trace, "hash-affinity", num_servers=2, server_memory_mb=1024.0,
            fault_spec=FaultSpec(seed=3),
        ).run()
        assert base.warm_starts == nulled.warm_starts
        assert base.cold_starts == nulled.cold_starts
        assert base.routed == nulled.routed
        assert nulled.sheds == 0 and nulled.server_downs == 0

    @pytest.mark.parametrize(
        "balancer", ["random", "round-robin", "hash-affinity",
                     "affinity-spillover", "least-loaded"]
    )
    def test_outage_sheds_then_recovers(self, balancer):
        from repro.faults import FaultSpec

        trace = self._trace()
        spec = FaultSpec(
            seed=1, server_downtimes=((0, 100.0, 200.0), (1, 100.0, 200.0))
        )
        result = ClusterSimulator(
            trace, balancer, num_servers=2, server_memory_mb=1024.0,
            fault_spec=spec,
        ).run()
        # Both servers down over [100, 200): those arrivals are shed
        # at the cluster level; everything else is served.
        assert result.shed_unavailable > 0
        assert result.server_downs == 2
        assert result.served + result.dropped + result.sheds == len(trace)

    def test_single_server_outage_reroutes_not_sheds(self):
        from repro.faults import FaultSpec

        trace = self._trace()
        spec = FaultSpec(seed=1, server_downtimes=((0, 100.0, 200.0),))
        result = ClusterSimulator(
            trace, "hash-affinity", num_servers=2, server_memory_mb=1024.0,
            fault_spec=spec,
        ).run()
        # The healthy server absorbs the failed one's traffic.
        assert result.shed_unavailable == 0
        assert result.server_downs == 1
        assert result.served + result.dropped == len(trace)

    def test_deterministic_across_runs(self):
        from repro.faults import FaultSpec

        trace = self._trace()
        spec = FaultSpec(
            seed=5, crash_rate=0.05, server_downtimes=((0, 100.0, 160.0),)
        )

        def run():
            r = ClusterSimulator(
                trace, "affinity-spillover", num_servers=2,
                server_memory_mb=1024.0, fault_spec=spec,
            ).run()
            return (r.warm_starts, r.cold_starts, r.faults_injected,
                    r.retries, r.sheds, r.shed_unavailable, r.routed)

        assert run() == run()

    def test_member_simulators_do_not_double_apply_outages(self):
        from repro.faults import FaultSpec

        trace = self._trace()
        spec = FaultSpec(seed=1, server_downtimes=((0, 100.0, 200.0),))
        sim = ClusterSimulator(
            trace, "round-robin", num_servers=2, server_memory_mb=1024.0,
            fault_spec=spec,
        )
        # The server-level spec hands outage ownership to the cluster:
        # members must not also schedule the downtime themselves.
        for server in sim.servers:
            assert not server._transitions
        result = sim.run()
        assert result.server_downs == 1

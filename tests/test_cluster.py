"""Tests for cluster-level load balancing and the cluster simulator."""

import pytest

from repro.cluster.loadbalancer import (
    HashAffinityBalancer,
    LeastLoadedBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from repro.cluster.simulation import ClusterSimulator
from tests.conftest import make_trace


class TestBalancers:
    def test_registry(self):
        for name in ("random", "round-robin", "hash-affinity", "least-loaded"):
            assert create_balancer(name, 4).name == name
        with pytest.raises(ValueError):
            create_balancer("psychic", 4)

    def test_server_count_validation(self):
        with pytest.raises(ValueError):
            RandomBalancer(0)

    def test_round_robin_cycles(self):
        lb = RoundRobinBalancer(3)
        routes = [lb.route("f", [0, 0, 0]) for __ in range(6)]
        assert routes == [0, 1, 2, 0, 1, 2]

    def test_random_in_range_and_deterministic(self):
        lb = RandomBalancer(4, seed=7)
        routes = [lb.route("f", [0] * 4) for __ in range(50)]
        assert all(0 <= r < 4 for r in routes)
        lb2 = RandomBalancer(4, seed=7)
        assert routes == [lb2.route("f", [0] * 4) for __ in range(50)]

    def test_hash_affinity_is_sticky(self):
        lb = HashAffinityBalancer(8, replicas=1)
        routes = {lb.route("my-func", [0] * 8) for __ in range(20)}
        assert len(routes) == 1

    def test_hash_affinity_replicas_rotate(self):
        lb = HashAffinityBalancer(8, replicas=3)
        routes = [lb.route("my-func", [0] * 8) for __ in range(9)]
        assert len(set(routes)) == 3
        # Strict rotation among the replica set.
        assert routes[:3] == routes[3:6] == routes[6:9]

    def test_hash_affinity_spreads_functions(self):
        lb = HashAffinityBalancer(8, replicas=1)
        routes = {lb.route(f"fn-{i}", [0] * 8) for i in range(100)}
        assert len(routes) >= 6  # most servers receive some function

    def test_hash_affinity_replica_validation(self):
        with pytest.raises(ValueError):
            HashAffinityBalancer(4, replicas=5)

    def test_least_loaded_picks_minimum(self):
        lb = LeastLoadedBalancer(3)
        assert lb.route("f", [100.0, 5.0, 50.0]) == 1

    def test_least_loaded_length_check(self):
        lb = LeastLoadedBalancer(3)
        with pytest.raises(ValueError):
            lb.route("f", [1.0])


class TestClusterSimulator:
    def test_all_invocations_routed(self):
        trace = make_trace("ABCD" * 25, gap_s=1.0)
        result = ClusterSimulator(
            trace, "round-robin", num_servers=4, server_memory_mb=2048.0
        ).run()
        assert sum(result.routed) == len(trace)
        assert result.served + result.dropped == len(trace)

    def test_single_server_matches_plain_simulator(self):
        from repro.sim.scheduler import simulate

        trace = make_trace("ABCABCBCA" * 10, gap_s=2.0)
        cluster = ClusterSimulator(
            trace, "round-robin", num_servers=1, server_memory_mb=1024.0
        ).run()
        single = simulate(trace, "GD", 1024.0).metrics
        assert cluster.cold_starts == single.cold_starts
        assert cluster.warm_starts == single.warm_starts

    def test_affinity_beats_random_on_locality(self):
        # Many functions, several servers, constrained memory: the
        # Section 9 claim — stateful routing improves keep-alive.
        sequence = []
        names = [chr(ord("A") + i) for i in range(20)]
        for round_ in range(40):
            sequence.extend(names)
        trace = make_trace("".join(sequence), gap_s=1.0)
        random_result = ClusterSimulator(
            trace, "random", num_servers=4, server_memory_mb=1280.0
        ).run()
        affinity_result = ClusterSimulator(
            trace, "hash-affinity", num_servers=4, server_memory_mb=1280.0
        ).run()
        assert (
            affinity_result.cold_start_pct < random_result.cold_start_pct
        )

    def test_balancer_instance_accepted(self):
        trace = make_trace("AB" * 5)
        lb = RoundRobinBalancer(2)
        result = ClusterSimulator(
            trace, lb, num_servers=2, server_memory_mb=1024.0
        ).run()
        assert result.balancer_name == "round-robin"

    def test_mismatched_balancer_size_rejected(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            ClusterSimulator(trace, RoundRobinBalancer(3), num_servers=2)

    def test_load_imbalance_metric(self):
        trace = make_trace("A" * 20, gap_s=100.0)
        # Affinity pins everything on one of two servers.
        result = ClusterSimulator(
            trace, "hash-affinity", num_servers=2, server_memory_mb=2048.0
        ).run()
        assert result.load_imbalance() == pytest.approx(2.0)


class TestAffinityWithSpillover:
    def test_registered(self):
        assert create_balancer("affinity-spillover", 4).name == (
            "affinity-spillover"
        )

    def test_factor_validation(self):
        from repro.cluster.loadbalancer import AffinityWithSpilloverBalancer

        with pytest.raises(ValueError):
            AffinityWithSpilloverBalancer(4, spillover_factor=1.0)

    def test_stays_home_under_balanced_load(self):
        from repro.cluster.loadbalancer import (
            AffinityWithSpilloverBalancer,
            HashAffinityBalancer,
        )

        lb = AffinityWithSpilloverBalancer(4, spillover_factor=1.5)
        home = HashAffinityBalancer(4).route("fn-x", [100.0] * 4)
        assert lb.route("fn-x", [100.0] * 4) == home
        assert lb.spillovers == 0

    def test_spills_when_home_is_hot(self):
        from repro.cluster.loadbalancer import (
            AffinityWithSpilloverBalancer,
            HashAffinityBalancer,
        )

        lb = AffinityWithSpilloverBalancer(4, spillover_factor=1.5)
        home = HashAffinityBalancer(4).route("fn-x", [0.0] * 4)
        load = [100.0] * 4
        load[home] = 1000.0  # home far above the mean
        coldest = min(range(4), key=lambda i: load[i])
        assert lb.route("fn-x", load) == coldest
        assert lb.spillovers == 1

    def test_bounds_imbalance_vs_pure_affinity(self):
        """Spillover keeps routed-load imbalance below pure affinity's
        on a skewed workload, at similar locality."""
        sequence = []
        names = [chr(ord("A") + i) for i in range(12)]
        for __ in range(60):
            sequence.extend(names)
        trace = make_trace("".join(sequence), gap_s=1.0)
        pure = ClusterSimulator(
            trace, "hash-affinity", num_servers=4, server_memory_mb=1024.0
        ).run()
        spill = ClusterSimulator(
            trace, "affinity-spillover", num_servers=4,
            server_memory_mb=1024.0,
            balancer_kwargs={"spillover_factor": 1.2},
        ).run()
        assert spill.load_imbalance() <= pure.load_imbalance() + 1e-9

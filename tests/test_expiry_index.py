"""The pool's incremental expiry index (PR 5's hot-path overhaul).

Unit tests pin the index's contract — non-consuming pops, busy
deferral, reschedule supersession (deadlines are *not* monotone),
evict cleanup, pinned exclusion, and the unscheduled fallback — and a
randomized equivalence suite drives thousands of mixed operations,
checking every ``pop_expired`` against a reference full-scan like the
one the TTL/HIST policies performed before the index existed.
"""

import random

from repro.core.container import Container
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction


def make_function(name, memory_mb=10.0):
    return TraceFunction(name, memory_mb, 0.1, 1.0)


def pooled(pool, name="F", at=0.0):
    container = Container(make_function(name), at)
    pool.add(container)
    return container


class TestScheduleAndPop:
    def test_nothing_due(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 100.0)
        assert pool.pop_expired(99.9) == []

    def test_due_entry_reported_with_deadline(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 100.0)
        assert pool.pop_expired(100.0) == [(c, 100.0)]

    def test_pop_is_non_consuming(self):
        # The simulator evicts what it pops, but unit-test drivers call
        # expired_containers repeatedly without evicting; the index
        # must keep reporting until the caller acts.
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 50.0)
        assert pool.pop_expired(60.0) == [(c, 50.0)]
        assert pool.pop_expired(60.0) == [(c, 50.0)]

    def test_ascending_deadline_then_id_order(self):
        pool = ContainerPool(1000.0)
        a = pooled(pool, "A")
        b = pooled(pool, "B")
        c = pooled(pool, "C")
        pool.schedule_expiry(a, 30.0)
        pool.schedule_expiry(b, 10.0)
        pool.schedule_expiry(c, 30.0)
        assert pool.pop_expired(40.0) == [(b, 10.0), (a, 30.0), (c, 30.0)]

    def test_reschedule_later_supersedes(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 10.0)
        pool.schedule_expiry(c, 90.0)
        assert pool.pop_expired(50.0) == []
        assert pool.pop_expired(90.0) == [(c, 90.0)]

    def test_reschedule_earlier_supersedes(self):
        # HIST re-plans can pull a deadline *earlier*; the index must
        # not assume monotone deadlines.
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 90.0)
        pool.schedule_expiry(c, 10.0)
        assert pool.pop_expired(50.0) == [(c, 10.0)]

    def test_busy_container_deferred_until_idle(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 10.0)
        c.start_invocation(5.0, 20.0)  # busy until 25, past the deadline
        assert pool.pop_expired(15.0) == []
        c.finish_invocation(25.0)
        assert pool.pop_expired(26.0) == [(c, 10.0)]

    def test_evicted_entry_is_dropped(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool)
        pool.schedule_expiry(c, 10.0)
        pool.evict(c)
        assert pool.pop_expired(20.0) == []
        assert pool.expiry_deadline_of(c) is None

    def test_pinned_is_never_scheduled(self):
        pool = ContainerPool(1000.0)
        container = Container(make_function("P"), 0.0)
        container.pinned = True
        pool.add(container)
        pool.schedule_expiry(container, 1.0)
        assert pool.expiry_deadline_of(container) is None
        assert pool.pop_expired(100.0) == []

    def test_unscheduled_fallback_scan(self):
        # Containers added without any policy hook fall back to the
        # caller-provided deadline function (manual pools in tests).
        pool = ContainerPool(1000.0)
        a = pooled(pool, "A")
        b = pooled(pool, "B")
        assert pool.pop_expired(100.0) == []  # no fallback, no opinion
        result = pool.pop_expired(100.0, lambda c: c.last_used_s + 50.0)
        assert result == [(a, 50.0), (b, 50.0)]

    def test_fallback_merges_in_deadline_order(self):
        pool = ContainerPool(1000.0)
        scheduled = pooled(pool, "A")
        unscheduled = pooled(pool, "B")
        pool.schedule_expiry(scheduled, 80.0)
        result = pool.pop_expired(100.0, lambda c: 20.0)
        assert result == [(unscheduled, 20.0), (scheduled, 80.0)]


class TestRandomizedEquivalence:
    """Heap-backed index vs the reference full-scan, on randomized
    schedules of schedule/start/finish/evict operations."""

    def reference_expired(self, pool, deadlines, now_s):
        pairs = [
            (container, deadlines[container.container_id])
            for container in pool.all_containers()
            if container.is_idle
            and not container.pinned
            and container.container_id in deadlines
            and deadlines[container.container_id] <= now_s
        ]
        pairs.sort(key=lambda p: (p[1], p[0].container_id))
        return pairs

    def run_schedule(self, seed):
        rng = random.Random(seed)
        pool = ContainerPool(100_000.0)
        deadlines = {}  # the test's own authoritative copy
        live = []
        now = 0.0
        for step in range(400):
            now += rng.uniform(0.0, 5.0)
            action = rng.random()
            if action < 0.30 or not live:
                container = pooled(pool, f"f{rng.randrange(8)}", at=now)
                live.append(container)
                deadline = now + rng.uniform(1.0, 40.0)
                pool.schedule_expiry(container, deadline)
                deadlines[container.container_id] = deadline
            elif action < 0.50:
                container = rng.choice(live)
                deadline = now + rng.uniform(-20.0, 40.0)  # can be past
                pool.schedule_expiry(container, deadline)
                deadlines[container.container_id] = deadline
            elif action < 0.65:
                container = rng.choice(live)
                if container.is_idle:
                    container.start_invocation(now, rng.uniform(0.5, 10.0))
            elif action < 0.80:
                busy = [c for c in live if c.is_running]
                if busy:
                    container = rng.choice(busy)
                    container.finish_invocation(container.busy_until_s)
            else:
                idle = [c for c in live if c.is_idle]
                if idle:
                    container = rng.choice(idle)
                    pool.evict(container)
                    live.remove(container)
                    deadlines.pop(container.container_id, None)
            if step % 5 == 0:
                got = pool.pop_expired(now)
                expected = self.reference_expired(pool, deadlines, now)
                assert got == expected, f"divergence at step {step} (seed {seed})"

    def test_equivalence_across_seeds(self):
        for seed in range(8):
            self.run_schedule(seed)

    def test_equivalence_with_eviction_of_expired(self):
        # The simulator's actual pattern: everything popped is evicted
        # immediately, so the next pop must not resurface it.
        rng = random.Random(99)
        pool = ContainerPool(100_000.0)
        deadlines = {}
        now = 0.0
        for _ in range(300):
            now += rng.uniform(0.0, 3.0)
            container = pooled(pool, f"f{rng.randrange(4)}", at=now)
            deadline = now + rng.uniform(1.0, 15.0)
            pool.schedule_expiry(container, deadline)
            deadlines[container.container_id] = deadline
            expected = self.reference_expired(pool, deadlines, now)
            got = pool.pop_expired(now)
            assert got == expected
            for expired, _ in got:
                pool.evict(expired)
                deadlines.pop(expired.container_id, None)
        assert pool.pop_expired(now + 1000.0) == [
            pair for pair in self.reference_expired(pool, deadlines, now + 1000.0)
        ]

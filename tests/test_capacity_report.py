"""Tests for the capacity-planning report generator."""

import pytest

from repro.provisioning.report import (
    CapacityPlan,
    SizingOption,
    build_capacity_plan,
    render_capacity_plan,
)
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace


@pytest.fixture(scope="module")
def plan():
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=200, max_daily_invocations=1500),
        seed=21,
    )
    trace = dataset_to_trace(dataset, name="plan-trace")
    return build_capacity_plan(trace)


class TestBuildPlan:
    def test_options_sorted_by_size(self, plan):
        sizes = [o.memory_mb for o in plan.options]
        assert sizes == sorted(sizes)

    def test_all_strategies_present(self, plan):
        labels = {o.label for o in plan.options}
        assert "target HR 90%" in labels
        assert "inflection point" in labels
        assert "knee + headroom" in labels

    def test_simulated_columns_populated(self, plan):
        for option in plan.options:
            assert 0.0 <= option.simulated_hit_ratio <= 1.0
            assert option.simulated_exec_increase_pct >= 0.0
            assert 0.0 <= option.simulated_drop_ratio <= 1.0

    def test_bigger_options_never_hit_worse(self, plan):
        ratios = [o.simulated_hit_ratio for o in plan.options]
        # Allow tiny non-monotonicity from concurrency noise.
        for a, b in zip(ratios, ratios[1:]):
            assert b >= a - 0.02

    def test_recommended_is_an_option(self, plan):
        assert plan.recommended() in plan.options

    def test_recommended_prefers_small_viable(self):
        options = [
            SizingOption("small", 1000.0, 0.8, 0.89, 5.0, 0.0),
            SizingOption("large", 4000.0, 0.9, 0.90, 4.0, 0.0),
        ]
        plan = CapacityPlan(
            trace_name="t",
            profile=None,
            working_set_mb=5000.0,
            concurrency_headroom_mb=0.0,
            max_achievable_hit_ratio=0.95,
            options=options,
        )
        # Small is within 2% of the best hit ratio: pick it.
        assert plan.recommended().label == "small"

    def test_recommended_avoids_droppy_options(self):
        options = [
            SizingOption("droppy", 1000.0, 0.9, 0.95, 2.0, 0.05),
            SizingOption("safe", 4000.0, 0.9, 0.94, 2.5, 0.0),
        ]
        plan = CapacityPlan(
            trace_name="t",
            profile=None,
            working_set_mb=5000.0,
            concurrency_headroom_mb=0.0,
            max_achievable_hit_ratio=0.95,
            options=options,
        )
        assert plan.recommended().label == "safe"


class TestRenderPlan:
    def test_markdown_structure(self, plan):
        text = render_capacity_plan(plan)
        assert text.startswith("# Capacity plan:")
        assert "## Workload" in text
        assert "## Sizing options" in text
        assert "**(recommended)**" in text
        # One table row per option.
        rows = [l for l in text.splitlines() if l.startswith("| ")]
        assert len(rows) >= len(plan.options) + 1  # header + rows

    def test_headroom_reported(self, plan):
        text = render_capacity_plan(plan)
        assert "concurrency headroom" in text

"""Tests for the online reuse-distance tracker and periodic curve provider."""

import math

import pytest

from repro.provisioning.online_curve import (
    OnlineReuseTracker,
    PeriodicCurveProvider,
)
from repro.provisioning.reuse_distance import reuse_distances
from tests.conftest import make_trace


class TestOnlineReuseTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineReuseTracker(window=0)
        with pytest.raises(ValueError):
            OnlineReuseTracker(max_samples=0)
        with pytest.raises(ValueError):
            OnlineReuseTracker().observe("f", 0.0)

    def test_first_access_infinite(self):
        tracker = OnlineReuseTracker()
        assert math.isinf(tracker.observe("A", 100.0))
        assert tracker.compulsory == 1

    def test_matches_offline_on_short_stream(self):
        sequence = "ABCBCABBACCA"
        trace = make_trace(sequence)
        offline = reuse_distances(trace)
        tracker = OnlineReuseTracker(window=1000)
        online = [
            tracker.observe(name, trace.functions[name].memory_mb)
            for name in sequence
        ]
        for a, b in zip(online, offline):
            if math.isinf(b):
                assert math.isinf(a)
            else:
                assert a == pytest.approx(b)

    def test_matches_offline_across_compactions(self):
        import random

        rng = random.Random(3)
        names = [f"f{i}" for i in range(8)]
        sequence = [rng.choice(names) for __ in range(500)]
        trace = make_trace(sequence, gap_s=1.0)
        offline = reuse_distances(trace)
        # Window larger than the stream: results must be identical
        # even though the small tree forces repeated compactions.
        tracker = OnlineReuseTracker(window=600)
        for (name, expected) in zip(sequence, offline):
            got = tracker.observe(name, trace.functions[name].memory_mb)
            if math.isinf(expected):
                assert math.isinf(got)
            else:
                assert got == pytest.approx(expected)

    def test_window_expiry_forgets_old_accesses(self):
        tracker = OnlineReuseTracker(window=3)
        tracker.observe("A", 10.0)
        for name in ("B", "C", "D"):
            tracker.observe(name, 10.0)
        # A's previous use is 4 accesses back, beyond window 3.
        assert math.isinf(tracker.observe("A", 10.0))

    def test_within_window_still_tracked(self):
        tracker = OnlineReuseTracker(window=10)
        tracker.observe("A", 10.0)
        tracker.observe("B", 20.0)
        tracker.observe("C", 30.0)
        assert tracker.observe("A", 10.0) == pytest.approx(50.0)

    def test_max_samples_bounds_memory(self):
        tracker = OnlineReuseTracker(window=100, max_samples=10)
        for i in range(50):
            tracker.observe("A", 10.0)
        assert len(tracker) == 10
        assert tracker.total_accesses == 50

    def test_curve_requires_samples(self):
        with pytest.raises(ValueError):
            OnlineReuseTracker().curve()

    def test_curve_reflects_stream(self):
        tracker = OnlineReuseTracker()
        for __ in range(5):
            for name in ("A", "B"):
                tracker.observe(name, 100.0)
        curve = tracker.curve()
        # Reuses have distance 100 (one other function in between).
        assert curve.hit_ratio(100.0) > curve.hit_ratio(99.0)


class TestPeriodicCurveProvider:
    def test_not_ready_before_min_samples(self):
        provider = PeriodicCurveProvider(min_samples=5)
        provider.observe("A", 100.0, now_s=0.0)
        assert not provider.ready
        with pytest.raises(ValueError):
            provider.current_curve()

    def test_builds_once_enough_samples(self):
        provider = PeriodicCurveProvider(min_samples=3)
        for i in range(3):
            provider.observe("A", 100.0, now_s=float(i))
        assert provider.ready
        assert provider.rebuilds == 1

    def test_refresh_interval_respected(self):
        provider = PeriodicCurveProvider(
            refresh_interval_s=100.0, min_samples=2
        )
        provider.observe("A", 100.0, now_s=0.0)
        provider.observe("A", 100.0, now_s=1.0)  # first build
        provider.observe("A", 100.0, now_s=50.0)  # too soon
        assert provider.rebuilds == 1
        provider.observe("A", 100.0, now_s=150.0)  # past the interval
        assert provider.rebuilds == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicCurveProvider(refresh_interval_s=0.0)


class TestDriftAdaptation:
    """Section 5.2: 'A drift in function characteristics is fixed by
    periodically updating the hit-ratio curve.'"""

    def _phase_trace(self, seed, num_functions, mem_mult, name):
        from repro.traces.azure import (
            AzureGeneratorConfig,
            generate_azure_dataset,
        )
        from repro.traces.preprocess import dataset_to_trace

        config = AzureGeneratorConfig(
            num_functions=num_functions,
            max_daily_invocations=600,
            memory_median_mb=170.0 * mem_mult,
        )
        dataset = generate_azure_dataset(config, seed=seed)
        return dataset_to_trace(dataset, name=name)

    def test_refreshed_curve_tracks_drifted_workload(self):
        from repro.provisioning.online_curve import PeriodicCurveProvider
        from repro.provisioning.reuse_distance import reuse_distances
        from repro.provisioning.hit_ratio import HitRatioCurve

        from repro.traces.model import Invocation, Trace, TraceFunction

        # Phase 1: small functions; phase 2: the population drifts to
        # 4x the memory footprint (e.g. ML workloads moving in).
        phase1 = self._phase_trace(1, 150, 1.0, "phase1")
        raw_phase2 = self._phase_trace(2, 150, 4.0, "phase2")
        # Generator ids collide across phases; prefix phase 2's.
        phase2 = Trace(
            [
                TraceFunction(
                    f"p2-{f.name}", f.memory_mb, f.warm_time_s, f.cold_time_s
                )
                for f in raw_phase2.functions.values()
            ],
            [
                Invocation(i.time_s, f"p2-{i.function_name}")
                for i in raw_phase2.invocations
            ],
            name="phase2",
        )
        drifted = phase1.merged_with(
            phase2.shifted(phase1.duration_s + 60.0), name="drifted"
        )

        provider = PeriodicCurveProvider(
            refresh_interval_s=6 * 3600.0, min_samples=200
        )
        for invocation in drifted:
            size = drifted.functions[invocation.function_name].memory_mb
            provider.observe(invocation.function_name, size, invocation.time_s)
        assert provider.rebuilds >= 2  # it actually refreshed

        # The refreshed curve must reflect phase 2's larger working
        # set: the size needed for a 60% hit ratio grows well beyond
        # what a curve frozen on phase 1 would report.
        stale = HitRatioCurve.from_distances(reuse_distances(phase1))
        fresh = provider.current_curve()
        target = min(0.6, stale.max_hit_ratio, fresh.max_hit_ratio)
        assert fresh.required_size(target) > 1.5 * stale.required_size(target)

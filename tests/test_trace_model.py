"""Unit tests for the trace data model."""

import pytest

from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_function, make_trace


class TestTraceFunction:
    def test_init_time_is_cold_minus_warm(self):
        f = TraceFunction("f", 128.0, warm_time_s=1.0, cold_time_s=3.5)
        assert f.init_time_s == pytest.approx(2.5)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            TraceFunction("f", 0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            TraceFunction("f", -5.0, 1.0, 2.0)

    def test_rejects_cold_faster_than_warm(self):
        with pytest.raises(ValueError):
            TraceFunction("f", 128.0, warm_time_s=3.0, cold_time_s=1.0)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            TraceFunction("f", 128.0, warm_time_s=-1.0, cold_time_s=1.0)

    def test_zero_init_time_allowed(self):
        f = TraceFunction("f", 128.0, warm_time_s=2.0, cold_time_s=2.0)
        assert f.init_time_s == 0.0

    def test_frozen(self):
        f = make_function()
        with pytest.raises(AttributeError):
            f.memory_mb = 512.0


class TestInvocation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Invocation(-1.0, "f")

    def test_ordering_by_time(self):
        assert Invocation(1.0, "b") < Invocation(2.0, "a")


class TestTrace:
    def test_sorts_invocations(self):
        f = make_function("A")
        trace = Trace([f], [Invocation(5.0, "A"), Invocation(1.0, "A")])
        times = [inv.time_s for inv in trace]
        assert times == [1.0, 5.0]

    def test_rejects_duplicate_functions(self):
        with pytest.raises(ValueError):
            Trace([make_function("A"), make_function("A")], [])

    def test_rejects_unknown_function_reference(self):
        with pytest.raises(ValueError):
            Trace([make_function("A")], [Invocation(0.0, "B")])

    def test_len_and_num_functions(self):
        trace = make_trace("AABBA")
        assert len(trace) == 5
        assert trace.num_functions == 2

    def test_duration_and_rates(self):
        trace = make_trace("ABAB", gap_s=10.0)
        assert trace.duration_s == pytest.approx(30.0)
        assert trace.arrival_rate() == pytest.approx(4 / 30.0)
        assert trace.mean_interarrival_s() == pytest.approx(10.0)

    def test_empty_trace_rates(self):
        trace = Trace([make_function("A")], [])
        assert trace.duration_s == 0.0
        assert trace.arrival_rate() == 0.0
        assert trace.mean_interarrival_s() == 0.0

    def test_per_function_counts(self):
        trace = make_trace("AABAC")
        counts = trace.per_function_counts()
        assert counts == {"A": 3, "B": 1, "C": 1}

    def test_restrict(self):
        trace = make_trace("AABAC")
        sub = trace.restrict(["A"])
        assert len(sub) == 3
        assert sub.num_functions == 1

    def test_restrict_unknown_raises(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            trace.restrict(["Z"])

    def test_shifted(self):
        trace = make_trace("AB", gap_s=5.0)
        shifted = trace.shifted(100.0)
        assert shifted.invocations[0].time_s == pytest.approx(100.0)
        assert shifted.duration_s == trace.duration_s

    def test_truncated(self):
        trace = make_trace("ABCD", gap_s=10.0)
        cut = trace.truncated(15.0)
        assert len(cut) == 2

    def test_merged_with(self):
        a = make_trace("AA")
        b = make_trace("BB")
        merged = a.merged_with(b)
        assert len(merged) == 4
        assert merged.num_functions == 2

    def test_merged_with_conflicting_function_raises(self):
        a = Trace([make_function("A", memory_mb=100)], [])
        b = Trace([make_function("A", memory_mb=200)], [])
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merged_with_shared_identical_function(self):
        f = make_function("A")
        a = Trace([f], [Invocation(0.0, "A")])
        b = Trace([f], [Invocation(1.0, "A")])
        merged = a.merged_with(b)
        assert len(merged) == 2

    def test_function_lookup(self):
        trace = make_trace("A")
        assert trace.function("A").name == "A"
        with pytest.raises(KeyError):
            trace.function("Z")

    def test_functions_returns_copy(self):
        trace = make_trace("A")
        fns = trace.functions
        fns.clear()
        assert trace.num_functions == 1

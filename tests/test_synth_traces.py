"""Tests for the FunctionBench models and synthetic litmus workloads."""

import pytest

from repro.traces.functionbench import (
    TABLE1_ROWS,
    functionbench_app,
    functionbench_apps,
)
from repro.traces.synth import (
    cyclic_trace,
    figure8_trace,
    multitenant_trace,
    periodic_arrivals,
    skewed_frequency_trace,
    skewed_size_trace,
)


class TestFunctionBench:
    def test_six_table1_applications(self):
        apps = functionbench_apps()
        assert len(apps) == 6
        assert len(TABLE1_ROWS) == 6

    def test_table1_values(self):
        cnn = functionbench_app("ml-inference-cnn")
        assert cnn.memory_mb == 512.0
        assert cnn.cold_time_s == 6.5
        assert cnn.init_time_s == 4.5
        assert cnn.warm_time_s == pytest.approx(2.0)

    def test_web_serving_init_dominates(self):
        web = functionbench_app("web-serving")
        # Init is ~83% of the total run time (the paper's "up to 80%").
        assert web.init_time_s / web.cold_time_s > 0.8

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError, match="unknown FunctionBench app"):
            functionbench_app("quantum-sim")


class TestPeriodicArrivals:
    def test_exact_periodicity_without_jitter(self):
        arrivals = periodic_arrivals("f", 2.0, 10.0)
        times = [a.time_s for a in arrivals]
        assert times == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_mean_rate_with_jitter(self):
        import random

        arrivals = periodic_arrivals(
            "f", 1.0, 10_000.0, jitter=1.0, rng=random.Random(5)
        )
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_times_strictly_increase(self):
        import random

        arrivals = periodic_arrivals(
            "f", 0.5, 100.0, jitter=0.8, rng=random.Random(1)
        )
        times = [a.time_s for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_arrivals("f", 0.0, 10.0)
        with pytest.raises(ValueError):
            periodic_arrivals("f", 1.0, 10.0, jitter=2.0)


class TestSkewedFrequency:
    def test_hot_function_dominates(self):
        trace = skewed_frequency_trace(duration_s=600.0)
        counts = trace.per_function_counts()
        hot = counts["floating-point"]
        for name, count in counts.items():
            if name != "floating-point":
                assert hot > 2 * count

    def test_deterministic(self):
        a = skewed_frequency_trace(duration_s=300.0, seed=9)
        b = skewed_frequency_trace(duration_s=300.0, seed=9)
        assert [i.time_s for i in a] == [i.time_s for i in b]

    def test_uses_table1_functions(self):
        trace = skewed_frequency_trace(duration_s=60.0)
        assert "ml-inference-cnn" in trace.functions


class TestCyclic:
    def test_strict_cycle_order(self):
        trace = cyclic_trace(num_functions=4, num_cycles=3)
        names = [i.function_name for i in trace]
        assert names == [f"cyclic-{i:03d}" for i in range(4)] * 3

    def test_heterogeneous_by_default(self):
        trace = cyclic_trace(num_functions=8)
        sizes = {f.memory_mb for f in trace.functions.values()}
        inits = {f.init_time_s for f in trace.functions.values()}
        assert len(sizes) > 1
        assert len(inits) > 1

    def test_minimum_cycle_length(self):
        with pytest.raises(ValueError):
            cyclic_trace(num_functions=1)


class TestSkewedSize:
    def test_two_size_classes(self):
        trace = skewed_size_trace(duration_s=120.0)
        sizes = {f.memory_mb for f in trace.functions.values()}
        assert sizes == {128.0, 1024.0}

    def test_function_counts(self):
        trace = skewed_size_trace(duration_s=120.0, num_small=3, num_large=2)
        assert trace.num_functions == 5


class TestFigure8AndMultitenant:
    def test_figure8_rates(self):
        trace = figure8_trace(duration_s=600.0, jitter=0.0)
        counts = trace.per_function_counts()
        # 400 ms IAT -> ~1500 invocations; 1500 ms -> ~400.
        assert counts["floating-point"] == pytest.approx(1500, rel=0.01)
        assert counts["ml-inference-cnn"] == pytest.approx(400, rel=0.01)

    def test_multitenant_adds_background(self):
        trace = multitenant_trace(duration_s=300.0, num_tenants=12)
        assert trace.num_functions == 4 + 12
        tenant_names = [n for n in trace.functions if n.startswith("tenant-")]
        assert len(tenant_names) == 12

    def test_multitenant_tenant_heterogeneity(self):
        trace = multitenant_trace(duration_s=300.0, num_tenants=12)
        tenant_sizes = {
            f.memory_mb
            for n, f in trace.functions.items()
            if n.startswith("tenant-")
        }
        assert len(tenant_sizes) >= 4

    def test_multitenant_deterministic(self):
        a = multitenant_trace(duration_s=300.0, seed=3)
        b = multitenant_trace(duration_s=300.0, seed=3)
        assert len(a) == len(b)
        assert [i.time_s for i in a][:50] == [i.time_s for i in b][:50]


class TestBurstyArrivals:
    def test_validation(self):
        import pytest
        from repro.traces.synth import bursty_arrivals

        with pytest.raises(ValueError):
            bursty_arrivals("f", 0.0, 1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            bursty_arrivals("f", 1.0, 0.0, 1.0, 10.0)

    def test_deterministic_per_rng(self):
        import random
        from repro.traces.synth import bursty_arrivals

        a = bursty_arrivals("f", 5.0, 10.0, 30.0, 500.0, rng=random.Random(2))
        b = bursty_arrivals("f", 5.0, 10.0, 30.0, 500.0, rng=random.Random(2))
        assert [x.time_s for x in a] == [x.time_s for x in b]

    def test_burstiness_exceeds_poisson(self):
        """Short-window rate variance far above a same-mean Poisson's."""
        import random
        from repro.traces.synth import bursty_arrivals, periodic_arrivals

        duration = 20_000.0
        bursty = bursty_arrivals(
            "f", 10.0, 5.0, 95.0, duration, rng=random.Random(3)
        )
        mean_rate = len(bursty) / duration
        poisson = periodic_arrivals(
            "f", 1.0 / mean_rate, duration, jitter=1.0, rng=random.Random(3)
        )

        def window_variance(arrivals, window=10.0):
            bins = {}
            for inv in arrivals:
                bins[int(inv.time_s // window)] = (
                    bins.get(int(inv.time_s // window), 0) + 1
                )
            n = int(duration // window)
            counts = [bins.get(i, 0) for i in range(n)]
            mean = sum(counts) / n
            return sum((c - mean) ** 2 for c in counts) / n

        assert window_variance(bursty) > 3.0 * window_variance(poisson)

    def test_respects_duration(self):
        import random
        from repro.traces.synth import bursty_arrivals

        arrivals = bursty_arrivals(
            "f", 5.0, 10.0, 20.0, 100.0, start_s=50.0, rng=random.Random(1)
        )
        assert all(50.0 <= a.time_s < 150.0 for a in arrivals)

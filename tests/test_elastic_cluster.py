"""Tests for elastic (horizontal) cluster scaling."""

import random

import pytest

from repro.cluster.elastic import ElasticClusterSimulation
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import bursty_arrivals, periodic_arrivals


def steady_trace(rate_per_s=20.0, duration_s=3600.0, num_functions=20):
    rng = random.Random(1)
    functions = [
        TraceFunction(f"f{i}", 128.0, 0.2, 1.2) for i in range(num_functions)
    ]
    invocations = []
    per_fn_iat = num_functions / rate_per_s
    for i, f in enumerate(functions):
        invocations += periodic_arrivals(
            f.name, per_fn_iat, duration_s,
            start_s=rng.uniform(0, per_fn_iat), jitter=0.5, rng=rng,
        )
    return Trace(functions, invocations, name="steady")


def ramp_trace(duration_s=7200.0):
    """Quiet first hour, busy second hour."""
    rng = random.Random(2)
    functions = [TraceFunction(f"f{i}", 128.0, 0.2, 1.2) for i in range(30)]
    invocations = []
    for i, f in enumerate(functions):
        invocations += periodic_arrivals(
            f.name, 30.0, duration_s / 2, start_s=rng.uniform(0, 30.0),
            jitter=0.5, rng=rng,
        )
        invocations += periodic_arrivals(
            f.name, 1.0, duration_s / 2, start_s=duration_s / 2 + rng.uniform(0, 1.0),
            jitter=0.5, rng=rng,
        )
    return Trace(functions, invocations, name="ramp")


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ElasticClusterSimulation(
                steady_trace(duration_s=60.0), requests_per_server_per_s=0.0
            )

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            ElasticClusterSimulation(
                steady_trace(duration_s=60.0), min_servers=4, max_servers=2
            )


class TestElasticScaling:
    def test_conserves_requests(self):
        trace = steady_trace(duration_s=1800.0)
        result = ElasticClusterSimulation(
            trace, requests_per_server_per_s=10.0, control_period_s=300.0
        ).run()
        assert result.served + result.dropped == len(trace)

    def test_scales_up_on_ramp(self):
        trace = ramp_trace()
        sim = ElasticClusterSimulation(
            trace,
            requests_per_server_per_s=10.0,
            control_period_s=300.0,
            max_servers=8,
        )
        result = sim.run()
        counts = [n for __, n in result.server_timeline]
        assert counts[0] == 1
        assert max(counts) > 1
        assert result.scale_ups > 0
        # The busy second half runs on more servers than the first.
        half = len(counts) // 2
        assert max(counts[half:]) > max(counts[:half])

    def test_scale_down_after_load_drops(self):
        """Busy first half, quiet second half: servers are released
        after the hold, and the release costs cold starts."""
        rng = random.Random(3)
        functions = [TraceFunction(f"f{i}", 128.0, 0.2, 1.2) for i in range(30)]
        invocations = []
        for f in functions:
            invocations += periodic_arrivals(
                f.name, 1.0, 3600.0, start_s=rng.uniform(0, 1.0),
                jitter=0.5, rng=rng,
            )
            invocations += periodic_arrivals(
                f.name, 60.0, 3600.0, start_s=3600.0 + rng.uniform(0, 60.0),
                jitter=0.5, rng=rng,
            )
        trace = Trace(functions, invocations, name="fall")
        result = ElasticClusterSimulation(
            trace,
            requests_per_server_per_s=10.0,
            control_period_s=300.0,
            scale_down_hold_s=600.0,
            max_servers=8,
        ).run()
        assert result.scale_downs > 0
        counts = [n for __, n in result.server_timeline]
        assert counts[-1] < max(counts)

    def test_routing_is_consistent_for_stable_cluster(self):
        trace = steady_trace(rate_per_s=5.0, duration_s=1800.0)
        sim = ElasticClusterSimulation(
            trace, requests_per_server_per_s=100.0, control_period_s=600.0
        )
        # Low load: one server throughout; every function routes there.
        result = sim.run()
        assert result.scale_ups == 0
        assert result.mean_servers == 1.0

    def test_mean_servers_tracks_load(self):
        light = ElasticClusterSimulation(
            steady_trace(rate_per_s=5.0, duration_s=1800.0),
            requests_per_server_per_s=10.0,
            control_period_s=300.0,
        ).run()
        heavy = ElasticClusterSimulation(
            steady_trace(rate_per_s=40.0, duration_s=1800.0),
            requests_per_server_per_s=10.0,
            control_period_s=300.0,
        ).run()
        assert heavy.mean_servers > light.mean_servers

    def test_cold_start_pct_bounds(self):
        trace = steady_trace(duration_s=900.0)
        result = ElasticClusterSimulation(
            trace, requests_per_server_per_s=10.0, control_period_s=300.0
        ).run()
        assert 0.0 <= result.cold_start_pct <= 100.0


class TestElasticFaults:
    """Fault injection folded through the elastic controller."""

    def _spec(self, **kw):
        from repro.faults import FaultSpec

        base = dict(seed=7, crash_rate=0.02,
                    server_downtimes=((0, 300.0, 600.0),))
        base.update(kw)
        return FaultSpec(**base)

    def test_faulted_run_populates_counters(self):
        trace = steady_trace(duration_s=1800.0)
        result = ElasticClusterSimulation(
            trace, requests_per_server_per_s=10.0, control_period_s=300.0,
            max_servers=4, fault_spec=self._spec(),
        ).run()
        assert result.faults_injected > 0
        assert result.server_downs >= 1
        assert result.served + result.dropped + result.sheds == len(trace)

    def test_deterministic(self):
        trace = steady_trace(duration_s=1800.0)

        def run():
            r = ElasticClusterSimulation(
                trace, requests_per_server_per_s=10.0,
                control_period_s=300.0, max_servers=4,
                fault_spec=self._spec(),
            ).run()
            return (r.served, r.dropped, r.sheds, r.faults_injected,
                    r.retries, r.server_downs, r.shed_unavailable,
                    r.scale_ups, r.scale_downs)

        assert run() == run()

    def test_zero_fault_spec_is_baseline(self):
        from repro.faults import FaultSpec

        trace = steady_trace(duration_s=1800.0)
        kwargs = dict(requests_per_server_per_s=10.0,
                      control_period_s=300.0, max_servers=4)
        base = ElasticClusterSimulation(trace, **kwargs).run()
        nulled = ElasticClusterSimulation(
            trace, fault_spec=FaultSpec(seed=9), **kwargs
        ).run()
        assert (base.served, base.dropped, base.scale_ups,
                base.scale_downs) == (
            nulled.served, nulled.dropped, nulled.scale_ups,
            nulled.scale_downs)
        assert nulled.faults_injected == 0 and nulled.sheds == 0

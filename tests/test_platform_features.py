"""Tests for stem-cell prewarm pools and provisioned concurrency."""

import pytest

from repro.core.container import Container
from repro.core.pool import ContainerPool
from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.openwhisk.latency import ColdStartModel
from repro.sim.scheduler import KeepAliveSimulator
from repro.core.policies import create_policy
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import figure8_trace
from tests.conftest import make_function


class TestStemCells:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            InvokerConfig(memory_mb=1024.0, stem_cell_count=-1)
        with pytest.raises(ValueError):
            InvokerConfig(memory_mb=1024.0, stem_cell_count=4, stem_cell_mb=256.0)

    def test_stems_reserve_pool_memory(self):
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=4096.0, stem_cell_count=4, stem_cell_mb=256.0),
            policy="GD",
        )
        assert invoker.pool.pool.capacity_mb == pytest.approx(3072.0)

    def test_stem_skips_docker_phase(self):
        f = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        trace = Trace([f], [Invocation(0.0, "A")])
        model = ColdStartModel()
        plain = SimulatedInvoker(
            InvokerConfig(memory_mb=2048.0), policy="GD",
            cold_start_model=model,
        ).run(trace)
        stem = SimulatedInvoker(
            InvokerConfig(memory_mb=2048.0, stem_cell_count=2), policy="GD",
            cold_start_model=model,
        ).run(trace)
        assert stem.records[0].latency_s == pytest.approx(
            plain.records[0].latency_s - model.docker_startup_s
        )

    def test_stems_replenish(self):
        f = make_function("A", memory_mb=100.0, warm_time_s=0.1, cold_time_s=1.0)
        g = make_function("B", memory_mb=100.0, warm_time_s=0.1, cold_time_s=1.0)
        h = make_function("C", memory_mb=100.0, warm_time_s=0.1, cold_time_s=1.0)
        # Three cold starts well apart: one stem serves all three
        # because it is recreated between them.
        trace = Trace(
            [f, g, h],
            [Invocation(0.0, "A"), Invocation(20.0, "B"), Invocation(40.0, "C")],
        )
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=2048.0, stem_cell_count=1), policy="GD"
        )
        invoker.run(trace)
        assert invoker.stem_hits == 3

    def test_stem_exhaustion_falls_back_to_full_cold(self):
        functions = [
            make_function(f"f{i}", memory_mb=50.0, warm_time_s=0.1, cold_time_s=1.0)
            for i in range(3)
        ]
        # Three simultaneous cold starts, one stem: two pay full price.
        trace = Trace(
            functions, [Invocation(0.001 * i, f"f{i}") for i in range(3)]
        )
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=2048.0, stem_cell_count=1, cpu_cores=8,
                          max_concurrent_launches=8),
            policy="GD",
        )
        invoker.run(trace)
        assert invoker.stem_hits == 1

    def test_stems_reduce_latency_under_churn(self):
        trace = figure8_trace(duration_s=300.0)
        base = InvokerConfig(memory_mb=1536.0, cpu_cores=8)
        with_stems = InvokerConfig(
            memory_mb=1536.0, cpu_cores=8, stem_cell_count=2, stem_cell_mb=128.0
        )
        plain = SimulatedInvoker(base, policy="TTL").run(trace)
        stems = SimulatedInvoker(with_stems, policy="TTL").run(trace)
        # Stems shave the Docker phase off cold starts; with slightly
        # less pool memory there may be a few more colds, but the cold
        # *latency* must be lower on average when stems were used.
        assert stems.served > 0 and plain.served > 0


class TestProvisionedConcurrency:
    def make_trace(self):
        """A is rare (100 MB); B and C churn (150 MB each, alternating).

        On a 350 MB server the three cannot coexist (400 MB), so the
        rare A is the natural victim — unless it is reserved.
        """
        a = TraceFunction("A", 100.0, warm_time_s=1.0, cold_time_s=5.0)
        b = TraceFunction("B", 150.0, warm_time_s=1.0, cold_time_s=5.0)
        c = TraceFunction("C", 150.0, warm_time_s=1.0, cold_time_s=5.0)
        invocations = []
        for i in range(5):
            invocations.append(Invocation(1000.0 * i + 505.0, "A"))
        for i in range(500):
            invocations.append(Invocation(10.0 * i, "B"))
            invocations.append(Invocation(10.0 * i + 5.0, "C"))
        return Trace([a, b, c], invocations)

    def test_pinned_container_cannot_be_evicted(self):
        pool = ContainerPool(1000.0)
        c = Container(make_function("A"), 0.0)
        c.pinned = True
        pool.add(c)
        assert pool.idle_containers() == []
        with pytest.raises(ValueError, match="pinned"):
            pool.evict(c)

    def test_reserved_function_never_cold_after_start(self):
        trace = self.make_trace()
        sim = KeepAliveSimulator(
            trace,
            create_policy("GD"),
            memory_mb=350.0,  # tight: A would normally churn out
            reserved_concurrency={"A": 1},
        )
        metrics = sim.run().metrics
        assert metrics.per_function["A"].cold == 0
        assert metrics.per_function["A"].warm == 5

    def test_without_reservation_rare_function_churns(self):
        trace = self.make_trace()
        sim = KeepAliveSimulator(trace, create_policy("GD"), memory_mb=350.0)
        metrics = sim.run().metrics
        assert metrics.per_function["A"].cold >= 4

    def test_reservation_costs_the_others(self):
        trace = self.make_trace()
        reserved = KeepAliveSimulator(
            trace, create_policy("GD"), 350.0, reserved_concurrency={"A": 1}
        ).run().metrics
        free = KeepAliveSimulator(
            trace, create_policy("GD"), 350.0
        ).run().metrics
        # With half the cache pinned for A, B has only one slot left —
        # which it can still use, but A's reservation can never be
        # reclaimed even while A idles.
        assert reserved.per_function["B"].warm <= free.per_function["B"].warm

    def test_unknown_reserved_function_rejected(self):
        trace = self.make_trace()
        with pytest.raises(ValueError, match="not in trace"):
            KeepAliveSimulator(
                trace, create_policy("GD"), 1000.0,
                reserved_concurrency={"ghost": 1},
            )

    def test_invalid_count_rejected(self):
        trace = self.make_trace()
        with pytest.raises(ValueError, match=">= 1"):
            KeepAliveSimulator(
                trace, create_policy("GD"), 1000.0,
                reserved_concurrency={"A": 0},
            )

    def test_reservation_too_big_for_server(self):
        from repro.core.pool import CapacityError

        trace = self.make_trace()
        with pytest.raises(CapacityError):
            KeepAliveSimulator(
                trace, create_policy("GD"), 150.0,
                reserved_concurrency={"A": 2},
            )

    def test_ttl_never_expires_pinned(self):
        trace = self.make_trace()
        sim = KeepAliveSimulator(
            trace,
            create_policy("TTL", ttl_s=60.0),
            memory_mb=1000.0,
            reserved_concurrency={"A": 1},
        )
        metrics = sim.run().metrics
        # A's IATs (1000 s) exceed the 60 s TTL, but the pinned
        # container survives every gap.
        assert metrics.per_function["A"].cold == 0

"""Tests for trace serialization (JSON and CSV round trips)."""

import json

import pytest

from repro.traces.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.traces.synth import skewed_size_trace
from tests.conftest import make_trace


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = skewed_size_trace(duration_s=120.0)
        path = tmp_path / "trace.json"
        save_trace_json(trace, path)
        loaded = load_trace_json(path)
        assert loaded.name == trace.name
        assert loaded.functions == trace.functions
        assert list(loaded.invocations) == list(trace.invocations)

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace_json(path)

    def test_rejects_future_version(self, tmp_path):
        trace = make_trace("AB")
        path = tmp_path / "trace.json"
        save_trace_json(trace, path)
        document = json.loads(path.read_text())
        document["version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_trace_json(path)

    def test_empty_trace(self, tmp_path):
        from repro.traces.model import Trace
        from tests.conftest import make_function

        trace = Trace([make_function("A")], [], name="empty")
        path = tmp_path / "empty.json"
        save_trace_json(trace, path)
        loaded = load_trace_json(path)
        assert len(loaded) == 0
        assert loaded.num_functions == 1


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = make_trace("ABCBA", gap_s=1.5)
        stem = tmp_path / "trace"
        save_trace_csv(trace, stem)
        loaded = load_trace_csv(stem, name="seq")
        assert loaded.functions == trace.functions
        assert list(loaded.invocations) == list(trace.invocations)

    def test_creates_two_files(self, tmp_path):
        trace = make_trace("AB")
        stem = tmp_path / "trace"
        save_trace_csv(trace, stem)
        assert (tmp_path / "trace.functions.csv").exists()
        assert (tmp_path / "trace.invocations.csv").exists()

    def test_float_precision_survives(self, tmp_path):
        from repro.traces.model import Invocation, Trace
        from tests.conftest import make_function

        t = 0.1 + 0.2  # not exactly representable
        trace = Trace([make_function("A")], [Invocation(t, "A")])
        stem = tmp_path / "trace"
        save_trace_csv(trace, stem)
        loaded = load_trace_csv(stem)
        assert loaded.invocations[0].time_s == t

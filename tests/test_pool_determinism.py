"""Regression tests: pool iteration order must be hash-seed independent.

``ContainerPool.containers_of`` used to return raw ``set`` iteration
order (the FC003 blind spot the ROADMAP flagged) and
``idle_warm_container`` broke ``last_used_s`` ties by the same raw
order. Beyond the same-process ordering assertions, the subprocess
test replays a seeded simulation under different ``PYTHONHASHSEED``
values — the environment knob that exposes any surviving
set-iteration-order dependence — and requires identical metrics.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.core.container import Container
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

REPO = pathlib.Path(__file__).resolve().parents[1]


def make_function(name, memory_mb=100.0):
    return TraceFunction(name, memory_mb, 0.1, 1.0)


class TestOrderedQueries:
    def test_containers_of_in_id_order(self):
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        containers = [Container(f, float(i)) for i in range(20)]
        for container in containers:
            pool.add(container)
        ids = [c.container_id for c in pool.containers_of("A")]
        assert ids == sorted(ids)

    def test_function_names_sorted(self):
        pool = ContainerPool(10_000.0)
        for name in ("zeta", "alpha", "mid"):
            pool.add(Container(make_function(name), 0.0))
        assert pool.function_names() == ["alpha", "mid", "zeta"]

    def test_idle_warm_tie_breaks_to_lowest_id(self):
        pool = ContainerPool(10_000.0)
        f = make_function("A")
        first = Container(f, 0.0)
        second = Container(f, 0.0)
        pool.add(first)
        pool.add(second)
        # Identical last_used_s: the winner must be the lowest id, not
        # whatever the hash seed makes the set yield first.
        assert first.last_used_s == second.last_used_s
        assert pool.idle_warm_container("A") is first


_SUBPROCESS_SCRIPT = """
import json
from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.synth import multitenant_trace

trace = multitenant_trace(duration_s=300.0, num_tenants=16)
sim = KeepAliveSimulator(trace, create_policy("TTL", ttl_s=60.0), 1024.0)
result = sim.run()
print(json.dumps(dict(sorted(result.metrics.counters().items()))))
"""


def _counters_with_hashseed(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_replay_stable_across_hash_seeds():
    assert _counters_with_hashseed("0") == _counters_with_hashseed("4242")

"""Shared fixtures: small deterministic traces and datasets."""

from __future__ import annotations

import pytest

from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.model import Invocation, Trace, TraceFunction


def make_function(
    name: str = "f",
    memory_mb: float = 256.0,
    warm_time_s: float = 1.0,
    cold_time_s: float = 3.0,
) -> TraceFunction:
    return TraceFunction(
        name=name,
        memory_mb=memory_mb,
        warm_time_s=warm_time_s,
        cold_time_s=cold_time_s,
    )


def make_trace(sequence, functions=None, gap_s: float = 10.0) -> Trace:
    """A trace from a name sequence like "ABCBCA", default functions.

    Invocations are spaced ``gap_s`` apart (long enough that each
    completes before the next arrives, with the default 1 s warm /
    3 s cold times).
    """
    names = sorted(set(sequence))
    if functions is None:
        functions = [make_function(name) for name in names]
    invocations = [
        Invocation(i * gap_s, name) for i, name in enumerate(sequence)
    ]
    return Trace(functions, invocations, name="seq")


@pytest.fixture
def abc_functions():
    """Three functions with distinct sizes and costs."""
    return [
        make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0),
        make_function("B", memory_mb=200.0, warm_time_s=1.0, cold_time_s=4.0),
        make_function("C", memory_mb=400.0, warm_time_s=1.0, cold_time_s=1.5),
    ]


@pytest.fixture
def small_dataset():
    """A small synthetic Azure dataset, cached per test module."""
    return generate_azure_dataset(
        AzureGeneratorConfig(num_functions=120, max_daily_invocations=2000),
        seed=11,
    )

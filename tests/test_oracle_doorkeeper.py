"""Tests for the clairvoyant oracle policies and the doorkeeper wrapper."""

import math

import pytest

from repro.core.container import Container
from repro.core.policies import create_policy
from repro.core.policies.doorkeeper import DoorkeeperPolicy
from repro.core.policies.oracle import CostAwareOraclePolicy, OraclePolicy
from repro.core.pool import ContainerPool
from repro.sim.scheduler import simulate
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import cyclic_trace
from tests.conftest import make_function, make_trace


class TestOracle:
    def make_oracle_pool(self, sequence, gap_s=10.0):
        trace = make_trace(sequence, gap_s=gap_s)
        policy = OraclePolicy(trace)
        pool = ContainerPool(10_000.0)
        return trace, policy, pool

    def test_never_used_again_evicted_first(self):
        trace, policy, pool = self.make_oracle_pool("ABAB")
        # At t=15 (after A B A), B returns at t=30; a dead function
        # never returns.
        dead = Container(make_function("Z", memory_mb=100.0), 0.0)
        assert policy.priority(dead, 15.0) == -math.inf

    def test_sooner_next_use_has_higher_priority(self):
        trace, policy, pool = self.make_oracle_pool("ABBA")
        # Arrivals: A@0, B@10, B@20, A@30. At t=11: B next at 20,
        # A next at 30 -> A is the better victim.
        ca = Container(trace.function("A"), 0.0)
        cb = Container(trace.function("B"), 10.0)
        assert policy.priority(ca, 11.0) < policy.priority(cb, 11.0)

    def test_oracle_at_least_matches_lru_on_cyclic(self):
        trace = cyclic_trace(num_functions=10, num_cycles=50)
        oracle = simulate(
            trace, create_policy("ORACLE", trace=trace), 1500.0
        ).metrics
        lru = simulate(trace, "LRU", 1500.0).metrics
        assert oracle.warm_starts >= lru.warm_starts

    def test_oracle_optimal_on_unit_size_pattern(self):
        """Belady on a unit-size pattern: the oracle must beat LRU and
        match the known optimal hit count."""
        # Classic: cache of 2, pattern A B C A B C... LRU gets 0 hits;
        # MIN keeps one of the two most recently seen.
        f = {n: TraceFunction(n, 100.0, 1.0, 2.0) for n in "ABC"}
        sequence = "ABCABCABCABC"
        invocations = [
            Invocation(10.0 * i, n) for i, n in enumerate(sequence)
        ]
        trace = Trace(f.values(), invocations)
        oracle = simulate(
            trace, create_policy("ORACLE", trace=trace), 200.0
        ).metrics
        lru = simulate(trace, "LRU", 200.0).metrics
        assert lru.warm_starts == 0
        # MIN on ABC repeated with cache 2 hits every other reuse:
        # hit ratio approaches 1/2 of reuses.
        assert oracle.warm_starts >= 4

    def test_cost_aware_oracle_on_heterogeneous_trace(self):
        """With size/cost heterogeneity, the cost-aware oracle should
        not lose to the plain one on total overhead."""
        trace = cyclic_trace(num_functions=12, num_cycles=60)
        plain = simulate(
            trace, create_policy("ORACLE", trace=trace), 2304.0
        ).metrics
        aware = simulate(
            trace, create_policy("ORACLE-CS", trace=trace), 2304.0
        ).metrics
        assert (
            aware.exec_time_increase_pct
            <= plain.exec_time_increase_pct + 1e-9
        )

    def test_cost_aware_upper_bounds_gd(self):
        """The clairvoyant cost-aware policy is the reference GD is
        judged against; it must not do worse than GD."""
        from repro.traces.synth import skewed_size_trace

        trace = skewed_size_trace(duration_s=1200.0)
        gd = simulate(trace, "GD", 4096.0).metrics
        oracle = simulate(
            trace, create_policy("ORACLE-CS", trace=trace), 4096.0
        ).metrics
        assert (
            oracle.exec_time_increase_pct <= gd.exec_time_increase_pct + 1e-9
        )


class TestDoorkeeper:
    def test_validation(self):
        with pytest.raises(ValueError):
            DoorkeeperPolicy(admission_threshold=0)
        with pytest.raises(ValueError):
            DoorkeeperPolicy(aging_interval=0)

    def test_wraps_named_policy(self):
        dk = DoorkeeperPolicy(inner="LRU")
        assert dk.inner.name == "LRU"

    def test_rejects_unproven_functions(self):
        dk = DoorkeeperPolicy(inner="GD", admission_threshold=2)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        dk.on_invocation(f, 0.0)
        c = Container(f, 0.0)
        pool.add(c)
        assert not dk.should_retain(c, 1.0, pool)
        assert dk.rejections == 1

    def test_admits_after_threshold(self):
        dk = DoorkeeperPolicy(inner="GD", admission_threshold=2)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        dk.on_invocation(f, 0.0)
        dk.on_invocation(f, 5.0)
        c = Container(f, 5.0)
        pool.add(c)
        assert dk.should_retain(c, 6.0, pool)

    def test_admission_history_survives_eviction(self):
        """The counter must persist across container death — that is
        what distinguishes a doorkeeper from the reset-on-eviction
        frequency of Section 4.1."""
        dk = DoorkeeperPolicy(inner="GD", admission_threshold=2)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        dk.on_invocation(f, 0.0)
        c = Container(f, 0.0)
        pool.add(c)
        pool.evict(c)
        dk.on_evict(c, 1.0, pool, pressure=True)
        dk.on_invocation(f, 10.0)
        assert dk.admission_count("A") == 2

    def test_aging_halves_counts(self):
        dk = DoorkeeperPolicy(inner="GD", aging_interval=4)
        f = make_function("A")
        for i in range(4):
            dk.on_invocation(f, float(i))
        assert dk.admission_count("A") == 2  # halved at the 4th

    def test_scan_resistance_end_to_end(self):
        """One-shot scan functions stop polluting the cache."""
        working = [TraceFunction(f"w{i}", 200.0, 1.0, 4.0) for i in range(4)]
        scans = [TraceFunction(f"s{i}", 200.0, 1.0, 4.0) for i in range(60)]
        invocations = []
        t = 0.0
        for round_ in range(12):
            for f in working:
                invocations.append(Invocation(t, f.name))
                t += 3.0
            for f in scans[round_ * 5 : (round_ + 1) * 5]:
                invocations.append(Invocation(t, f.name))
                t += 3.0
        trace = Trace(working + scans, invocations)
        plain = simulate(trace, "GD", 1000.0).metrics
        gated = simulate(
            trace, create_policy("DOORKEEPER", inner="GD"), 1000.0
        ).metrics
        working_warm_plain = sum(
            plain.per_function[f.name].warm for f in working
        )
        working_warm_gated = sum(
            gated.per_function[f.name].warm for f in working
        )
        assert working_warm_gated > working_warm_plain

    def test_expired_prewarm_delegation(self):
        """TTL-flavoured inner policies keep their expiry behaviour."""
        dk = DoorkeeperPolicy(inner=create_policy("TTL", ttl_s=50.0))
        pool = ContainerPool(1000.0)
        f = make_function("A")
        dk.on_invocation(f, 0.0)
        dk.on_invocation(f, 1.0)
        c = Container(f, 0.0)
        pool.add(c)
        dk.on_cold_start(c, 0.0, pool)
        assert dk.expired_containers(pool, 100.0)

"""Trace/aggregate consistency and offline report reconstruction.

The core gate: for any fully-traced seeded run, the lifecycle counters
rebuilt from the event stream must equal the simulator's live
:meth:`SimulationMetrics.counters` — the trace is complete, nothing is
double-counted, nothing is missed.
"""

import pytest

from repro.core.policies import create_policy
from repro.obs.report import TraceReport, load_report, report_from_events
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.synth import (
    cyclic_trace,
    multitenant_trace,
    skewed_frequency_trace,
)
from tests.conftest import make_trace


def traced_run(policy_name, trace, memory_mb, **sim_kwargs):
    sink = RingBufferSink(capacity=2_000_000)
    sim = KeepAliveSimulator(
        trace, create_policy(policy_name), memory_mb,
        tracer=Tracer(sink, strict=True),
        **sim_kwargs,
    )
    sim.run()
    return sim.metrics, report_from_events(sink)


class TestCountersConsistency:
    """Rebuilt counters == live counters, across policies that
    exercise every eviction reason."""

    @pytest.mark.parametrize("policy", ["GD", "TTL", "LRU", "HIST",
                                        "DOORKEEPER", "FREQ"])
    def test_skewed_frequency(self, policy):
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        metrics, report = traced_run(policy, trace, 512.0)
        assert report.counters() == metrics.counters()
        assert report.check_counters(metrics.counters()) == []

    @pytest.mark.parametrize("policy", ["GD", "TTL", "DOORKEEPER"])
    def test_multitenant(self, policy):
        trace = multitenant_trace(duration_s=600.0, num_tenants=8)
        metrics, report = traced_run(policy, trace, 1024.0)
        assert report.counters() == metrics.counters()

    def test_expiry_heavy(self):
        # Long gaps force TTL expirations (reason="expiry"), which must
        # land in the `expirations` counter, not `evictions`.
        metrics, report = traced_run(
            "TTL", make_trace("ABAB" * 3, gap_s=400.0), 8192.0
        )
        assert metrics.expirations > 0
        assert report.counters() == metrics.counters()
        assert report.evictions_by_reason.get("expiry", 0) > 0

    def test_admission_heavy(self):
        # Doorkeeper refusals (reason="admission") also count as
        # expirations in the simulator's aggregate.
        metrics, report = traced_run(
            "DOORKEEPER", make_trace("ABCADAEA", gap_s=5.0), 8192.0
        )
        assert report.evictions_by_reason.get("admission", 0) > 0
        assert report.counters() == metrics.counters()

    def test_mismatch_is_reported(self):
        metrics, report = traced_run(
            "GD", skewed_frequency_trace(seed=1, duration_s=300.0), 512.0
        )
        expected = dict(metrics.counters())
        expected["warm_starts"] += 1
        expected["nonsense"] = 5
        mismatches = report.check_counters(expected)
        assert len(mismatches) == 2
        assert any("warm_starts" in m for m in mismatches)
        assert any("nonsense" in m for m in mismatches)

    def test_counter_keys_match_simulation_metrics(self):
        from repro.sim.metrics import SimulationMetrics

        assert set(TraceReport().counters()) == set(
            SimulationMetrics().counters()
        )

    def test_faulted_run_counters_agree(self):
        # The consistency gate must survive the chaos layer: a run
        # with injected faults, retries, sheds, and a server outage
        # still reconstructs the simulator's counters exactly from
        # the event stream (warmup_s=0, so nothing is gated away).
        from repro.faults import FaultSpec

        spec = FaultSpec(
            seed=11,
            spawn_failure_rate=0.05,
            crash_rate=0.03,
            timeout_rate=0.02,
            server_downtimes=((0, 200.0, 260.0),),
            max_retries=2,
            per_function_retry_budget=10,
        )
        trace = skewed_frequency_trace(seed=1, duration_s=600.0)
        metrics, report = traced_run("GD", trace, 512.0, fault_spec=spec)
        # The run must actually exercise every new counter.
        assert metrics.faults_injected > 0
        assert metrics.retries > 0
        assert metrics.sheds > 0
        assert metrics.server_downs == 1
        assert report.counters() == metrics.counters()
        assert report.check_counters(metrics.counters()) == []
        # By-kind / by-reason breakdowns agree with the live metrics.
        assert report.faults_by_kind == dict(metrics.faults_by_kind)
        assert report.sheds_by_reason == dict(metrics.sheds_by_reason)
        # "failure" evictions (crashed containers, dead servers) stay
        # out of the cache-policy counters on both sides.
        assert report.evictions_by_reason.get("failure", 0) > 0


class TestTimelines:
    def test_per_function_event_order(self):
        __, report = traced_run("GD", make_trace("AAB", gap_s=10.0), 8192.0)
        timeline = report.timeline("A")
        kinds = [kind for __, kind in timeline.events]
        assert kinds[:3] == [
            "invocation_arrived", "container_spawned", "cold_start"
        ]
        assert "warm_hit" in kinds
        assert timeline.counts()["invocation_arrived"] == 2

    def test_unknown_function_raises(self):
        __, report = traced_run("GD", make_trace("A", gap_s=1.0), 8192.0)
        with pytest.raises(KeyError, match="never appears"):
            report.timeline("nope")


class TestChurn:
    def test_refaults_tracked(self):
        # Tight memory on a cyclic workload: evicted functions return
        # and re-fault, the thrash signature.
        metrics, report = traced_run("GD", cyclic_trace(), 768.0)
        assert metrics.evictions > 0
        top = report.most_evicted(5)
        assert top
        assert top[0].evictions >= top[-1].evictions
        assert any(e.refaults > 0 for e in top)
        refaulted = next(e for e in top if e.refaults > 0)
        assert refaulted.refault_gap_s > 0.0

    def test_pressure_summary(self):
        __, report = traced_run("GD", cyclic_trace(), 768.0)
        assert report.pressure_events > 0
        assert 0.0 < report.peak_utilization <= 1.0
        assert report.peak_used_mb <= 768.0


class TestRendering:
    def test_render_sections(self):
        __, report = traced_run("GD", cyclic_trace(), 768.0)
        text = report.render(top_n=3)
        assert "lifecycle counters" in text
        assert "evictions by reason" in text
        assert "eviction churn" in text
        assert "memory pressure" in text

    def test_render_empty_report(self):
        text = TraceReport().render()
        assert "0 events" in text


class TestLoadReport:
    def test_from_jsonl_file(self, tmp_path):
        from repro.obs.sinks import JsonlSink

        path = tmp_path / "run.jsonl"
        trace = skewed_frequency_trace(seed=1, duration_s=300.0)
        with JsonlSink(path) as sink:
            sim = KeepAliveSimulator(
                trace, create_policy("GD"), 512.0,
                tracer=Tracer(sink, strict=True),
            )
            sim.run()
        report = load_report(path)
        assert report.counters() == sim.metrics.counters()
        assert report.total_events == sink.events_written

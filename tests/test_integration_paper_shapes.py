"""Integration tests: the paper's qualitative claims at small scale.

Each test reproduces — with reduced workload sizes so the suite stays
fast — the *shape* of a paper result: who wins, in which regime, and
roughly by how much. The full-scale regenerations live in
``benchmarks/``.
"""

import pytest

from repro.openwhisk.invoker import InvokerConfig
from repro.openwhisk.loadgen import compare_keepalive_systems
from repro.provisioning.autoscale import AutoscaledSimulation
from repro.provisioning.controller import ProportionalController
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.sim.scheduler import simulate
from repro.sim.server import GB_MB
from repro.sim.sweep import run_sweep
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import make_paper_traces
from repro.traces.synth import cyclic_trace, skewed_size_trace


@pytest.fixture(scope="module")
def paper_traces():
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=900, max_daily_invocations=10_000),
        seed=7,
    )
    return make_paper_traces(
        dataset,
        sizes={"rare": 250, "representative": 120, "random": 60},
        seed=3,
    )


class TestFigure5Shapes:
    """Figure 5: execution-time increase across policies and sizes."""

    def test_representative_gd_beats_ttl_by_3x(self, paper_traces):
        trace = paper_traces["representative"]
        sweep = run_sweep(trace, [8.0, 16.0], policies=("GD", "TTL"))
        for memory_gb in (8.0, 16.0):
            gd = dict(sweep.series("GD", "exec_time_increase_pct"))[memory_gb]
            ttl = dict(sweep.series("TTL", "exec_time_increase_pct"))[memory_gb]
            assert ttl > 3.0 * gd, (
                f"at {memory_gb} GB: GD={gd:.2f}% TTL={ttl:.2f}%"
            )

    def test_gd_shrinks_cache_requirement(self, paper_traces):
        """GD at a small cache should match or beat TTL at a much
        larger one (the paper's 3x cache-size reduction claim)."""
        trace = paper_traces["representative"]
        gd_small = simulate(trace, "GD", 8.0 * GB_MB).metrics
        ttl_large = simulate(trace, "TTL", 24.0 * GB_MB).metrics
        assert (
            gd_small.exec_time_increase_pct
            <= ttl_large.exec_time_increase_pct
        )

    def test_rare_trace_caching_beats_ttl(self, paper_traces):
        """Figure 5b: for rare functions, caching-based policies beat
        the expiring TTL (which pays a cold start after every lapse)."""
        trace = paper_traces["rare"]
        sweep = run_sweep(trace, [16.0], policies=("LRU", "GD", "TTL"))
        ttl = dict(sweep.series("TTL", "exec_time_increase_pct"))[16.0]
        lru = dict(sweep.series("LRU", "exec_time_increase_pct"))[16.0]
        assert ttl > 1.5 * lru

    def test_random_trace_lru_close_to_best(self, paper_traces):
        """Figure 5c: recency dominates on random samples; LRU is
        within a whisker of every other caching policy."""
        trace = paper_traces["random"]
        sweep = run_sweep(
            trace, [12.0], policies=("GD", "LRU", "FREQ", "SIZE", "LND")
        )
        values = {
            p: dict(sweep.series(p, "exec_time_increase_pct"))[12.0]
            for p in ("GD", "LRU", "FREQ", "SIZE", "LND")
        }
        best = min(values.values())
        assert values["LRU"] <= best * 1.5 + 0.5


class TestFigure6Shapes:
    def test_cold_start_fraction_ordering(self, paper_traces):
        trace = paper_traces["representative"]
        sweep = run_sweep(trace, [8.0], policies=("GD", "TTL"))
        gd = dict(sweep.series("GD", "cold_start_pct"))[8.0]
        ttl = dict(sweep.series("TTL", "cold_start_pct"))[8.0]
        assert gd < ttl

    def test_cold_starts_shrink_with_memory(self, paper_traces):
        trace = paper_traces["representative"]
        sweep = run_sweep(trace, [2.0, 8.0, 24.0], policies=("GD",))
        series = [v for __, v in sweep.series("GD", "cold_start_pct")]
        assert series[0] >= series[1] >= series[2]


class TestFigure3Shape:
    def test_reuse_distance_curve_tracks_observed(self, paper_traces):
        from repro.analysis.curves import figure3_data

        trace = paper_traces["representative"]
        data = figure3_data(trace, [2.0, 6.0, 12.0, 24.0])
        # Prediction and observation agree within coarse tolerance...
        for p, o in zip(data.predicted, data.observed):
            assert abs(p - o) < 0.25
        # ...and both rise with cache size.
        assert data.predicted == sorted(data.predicted)


class TestFigure7Shape:
    def test_faascache_wins_on_cyclic(self):
        trace = cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=80)
        config = InvokerConfig(memory_mb=1664.0, cpu_cores=8)
        cmp = compare_keepalive_systems(trace, config)
        assert cmp.warm_start_gain > 1.5

    def test_faascache_wins_on_skewed_size(self):
        trace = skewed_size_trace(duration_s=1800.0)
        config = InvokerConfig(memory_mb=4838.0, cpu_cores=8)
        cmp = compare_keepalive_systems(trace, config)
        assert cmp.faascache.warm_starts > 1.2 * cmp.openwhisk.warm_starts


class TestFigure9Shape:
    def test_controller_reduces_average_size_30pct(self, paper_traces):
        """Dynamic scaling vs a conservative static provision."""
        trace = paper_traces["representative"]
        curve = HitRatioCurve.from_distances(reuse_distances(trace))
        static_mb = curve.required_size(min(0.95, curve.max_hit_ratio))
        mean_rate = trace.arrival_rate()
        controller = ProportionalController.from_miss_ratio_target(
            curve,
            desired_miss_ratio=0.05,
            mean_arrival_rate=mean_rate,
            initial_size_mb=static_mb,
            max_size_mb=static_mb,
            control_period_s=600.0,
        )
        result = AutoscaledSimulation(trace, controller, policy="GD").run()
        savings = result.savings_vs_static(static_mb)
        assert savings > 0.2, f"savings only {savings:.1%}"
        # The miss speed stays in the same order of magnitude as the
        # target once warmed up.
        steady = result.decisions[len(result.decisions) // 2 :]
        mean_miss = sum(d.miss_speed for d in steady) / len(steady)
        assert mean_miss < 10 * controller.target_miss_speed

"""Structural tests for the columnar trace representation.

Covers the :class:`FunctionTable`/:class:`ColumnarTrace` contracts
(lossless round-trip with the object form, validation, chunked
iteration) and :class:`StreamingChurnTrace` determinism (restartable,
chunk-size independent, materialize == chunk concatenation). The
*behavioral* guarantee — identical simulation metrics from either
representation — lives in ``test_columnar_differential.py``.
"""

import numpy as np
import pytest

from repro.bench import churn_trace
from repro.traces.columnar import ColumnarTrace, FunctionTable
from repro.traces.model import TraceFunction
from repro.traces.streaming import StreamingChurnTrace
from tests.conftest import make_function, make_trace


def small_columnar():
    return ColumnarTrace.from_trace(make_trace("ABCBCAAB"))


class TestFunctionTable:
    def test_rows_in_insertion_order(self):
        funcs = [make_function(n) for n in ("zeta", "alpha", "mid")]
        table = FunctionTable(funcs)
        assert table.names == ("zeta", "alpha", "mid")
        assert [table.index_of(f.name) for f in funcs] == [0, 1, 2]
        assert table.object_of(1) is funcs[1]

    def test_columns_parallel_to_rows(self):
        funcs = [
            TraceFunction("a", 128.0, 0.2, 1.2),
            TraceFunction("b", 512.0, 0.5, 3.0),
        ]
        table = FunctionTable(funcs)
        assert table.memory_mb.tolist() == [128.0, 512.0]
        assert table.warm_time_s.tolist() == [0.2, 0.5]
        assert table.cold_time_s.tolist() == [1.2, 3.0]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FunctionTable([make_function("a"), make_function("a")])

    def test_as_dict_matches_object_trace_contract(self):
        trace = make_trace("AB")
        table = FunctionTable(trace.functions.values())
        assert table.as_dict() == trace.functions


class TestColumnarTrace:
    def test_round_trip_is_lossless(self):
        trace = make_trace("ABCBCAAB")
        back = ColumnarTrace.from_trace(trace).to_trace()
        assert back.name == trace.name
        assert back.functions == trace.functions
        assert back.invocations == trace.invocations

    def test_round_trip_large_seeded_trace(self):
        trace = churn_trace(num_functions=40, seed=17)
        back = ColumnarTrace.from_trace(trace).to_trace()
        assert back.invocations == trace.invocations

    def test_replay_order_preserved(self):
        trace = make_trace("BAAB")
        columnar = ColumnarTrace.from_trace(trace)
        names = columnar.functions_table.names
        replayed = [
            (t, names[i])
            for t, i in zip(
                columnar.times_s.tolist(), columnar.function_ids.tolist()
            )
        ]
        assert replayed == [
            (inv.time_s, inv.function_name) for inv in trace.invocations
        ]

    def test_footprint_is_twelve_bytes_per_invocation(self):
        columnar = small_columnar()
        assert columnar.nbytes == 12 * len(columnar)

    def test_shape_mismatch_rejected(self):
        table = FunctionTable([make_function("a")])
        with pytest.raises(ValueError, match="parallel"):
            ColumnarTrace(table, np.zeros(3), np.zeros(2, dtype=np.int32))

    def test_decreasing_times_rejected(self):
        table = FunctionTable([make_function("a")])
        with pytest.raises(ValueError, match="non-decreasing"):
            ColumnarTrace(
                table,
                np.array([1.0, 0.5]),
                np.zeros(2, dtype=np.int32),
            )

    def test_negative_time_rejected(self):
        table = FunctionTable([make_function("a")])
        with pytest.raises(ValueError, match=">= 0"):
            ColumnarTrace(
                table, np.array([-1.0]), np.zeros(1, dtype=np.int32)
            )

    def test_out_of_range_function_id_rejected(self):
        table = FunctionTable([make_function("a")])
        with pytest.raises(ValueError, match="function ids"):
            ColumnarTrace(
                table, np.array([0.0]), np.array([1], dtype=np.int32)
            )

    def test_iter_chunks_partitions_in_order(self):
        columnar = small_columnar()
        chunks = list(columnar.iter_chunks(3))
        assert [len(t) for t, __ in chunks] == [3, 3, 2]
        times = np.concatenate([t for t, __ in chunks])
        ids = np.concatenate([i for __, i in chunks])
        assert np.array_equal(times, columnar.times_s)
        assert np.array_equal(ids, columnar.function_ids)

    def test_iter_chunks_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            list(small_columnar().iter_chunks(0))

    def test_per_function_counts(self):
        columnar = small_columnar()
        assert columnar.per_function_counts() == {"A": 3, "B": 3, "C": 2}

    def test_trace_compatible_surface(self):
        trace = make_trace("ABCBCAAB")
        columnar = ColumnarTrace.from_trace(trace)
        assert columnar.functions == trace.functions
        assert columnar.duration_s == trace.duration_s
        assert columnar.num_functions == len(trace.functions)
        assert len(columnar) == len(trace.invocations)

    def test_empty_trace(self):
        table = FunctionTable([make_function("a")])
        empty = ColumnarTrace(
            table, np.empty(0), np.empty(0, dtype=np.int32)
        )
        assert len(empty) == 0
        assert empty.duration_s == 0.0
        assert list(empty.iter_chunks()) == []


class TestStreamingChurnTrace:
    def test_chunks_are_chunk_size_independent(self):
        kwargs = dict(num_functions=30, duration_s=3000.0, seed=11)
        small = StreamingChurnTrace(chunk_invocations=64, **kwargs)
        large = StreamingChurnTrace(chunk_invocations=4096, **kwargs)
        a, b = small.materialize(), large.materialize()
        assert np.array_equal(a.times_s, b.times_s)
        assert np.array_equal(a.function_ids, b.function_ids)

    def test_chunks_are_restartable(self):
        stream = StreamingChurnTrace(
            num_functions=20, duration_s=2000.0, seed=5
        )
        first = stream.materialize()
        second = stream.materialize()
        assert np.array_equal(first.times_s, second.times_s)
        assert np.array_equal(first.function_ids, second.function_ids)

    def test_chunk_sizes_respected(self):
        stream = StreamingChurnTrace(
            num_functions=20,
            duration_s=2000.0,
            seed=5,
            chunk_invocations=50,
        )
        sizes = [len(times) for times, __ in stream.chunks()]
        assert all(size == 50 for size in sizes[:-1])
        assert 0 < sizes[-1] <= 50

    def test_merge_order_equals_object_sort_order(self):
        """(time, function id) heap order must equal the object
        trace's canonical (time, function name) sort — the zero-padded
        names guarantee it."""
        stream = StreamingChurnTrace(
            num_functions=25, duration_s=4000.0, seed=9
        )
        trace = stream.materialize().to_trace()
        expected = sorted(
            trace.invocations,
            key=lambda inv: (inv.time_s, inv.function_name),
        )
        assert list(trace.invocations) == expected

    def test_arrivals_respect_duration(self):
        stream = StreamingChurnTrace(
            num_functions=20, duration_s=1500.0, seed=3
        )
        times = stream.materialize().times_s
        assert times.size > 0
        assert float(times[-1]) < 1500.0

    def test_different_seeds_differ(self):
        a = StreamingChurnTrace(num_functions=20, duration_s=2000.0, seed=1)
        b = StreamingChurnTrace(num_functions=20, duration_s=2000.0, seed=2)
        assert not np.array_equal(
            a.materialize().times_s, b.materialize().times_s
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            StreamingChurnTrace(num_functions=0)
        with pytest.raises(ValueError, match="duration"):
            StreamingChurnTrace(duration_s=0.0)
        with pytest.raises(ValueError, match=">= 1"):
            StreamingChurnTrace(chunk_invocations=0)

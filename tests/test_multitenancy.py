"""Multi-tenant keep-alive: tenant identity, pool modes, weighted GDSF,
fairness metrics, and backward compatibility (docs/multi-tenancy.md).

The backward-compat tests are the load-bearing ones: a tenant-less
trace simulated in shared mode must behave — and serialize, and
fingerprint — exactly as it did before multi-tenancy existed, so the
committed baselines (benchmarks/BASELINE.json) stay valid.
"""

import dataclasses
import json

import pytest

from repro.checks.sanitize import SanitizeError, check_tenant_counter_equality
from repro.cli import _parse_tenant_map
from repro.core.container import Container
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.core.pool import CapacityError, ContainerPool
from repro.obs.report import report_from_events
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.sim.metrics import SimulationMetrics, jain_index
from repro.sim.scheduler import simulate
from repro.sim.sweep import SweepPoint, point_fingerprint, run_cell
from repro.traces.columnar import ColumnarTrace
from repro.traces.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.streaming import StreamingChurnTrace
from repro.traces.synth import noisy_neighbor_trace


def _two_tenant_trace():
    """Two tenants, one function each, interleaved arrivals."""
    functions = [
        TraceFunction("alpha", 256.0, 0.1, 1.0, tenant_id=1),
        TraceFunction("beta", 256.0, 0.1, 1.0, tenant_id=2),
    ]
    invocations = [
        Invocation(t, name)
        for t, name in enumerate(["alpha", "beta"] * 20)
    ]
    return Trace(functions, invocations, name="two-tenant")


# ---------------------------------------------------------------------------
# Tenant identity in the trace model and serialization
# ---------------------------------------------------------------------------


class TestTenantModel:
    def test_default_tenant_is_zero(self):
        func = TraceFunction("f", 128.0, 0.1, 1.0)
        assert func.tenant_id == 0

    def test_negative_tenant_rejected(self):
        with pytest.raises(ValueError):
            TraceFunction("f", 128.0, 0.1, 1.0, tenant_id=-1)

    def test_trace_tenant_ids_sorted_and_has_tenants(self):
        trace = _two_tenant_trace()
        assert trace.tenant_ids() == (1, 2)
        assert trace.has_tenants
        plain = Trace(
            [TraceFunction("f", 128.0, 0.1, 1.0)],
            [Invocation(0.0, "f")],
        )
        assert plain.tenant_ids() == (0,)
        assert not plain.has_tenants

    def test_json_round_trip_preserves_tenants(self, tmp_path):
        trace = _two_tenant_trace()
        path = tmp_path / "trace.json"
        save_trace_json(trace, path)
        loaded = load_trace_json(path)
        assert {
            f.name: f.tenant_id for f in loaded.functions.values()
        } == {"alpha": 1, "beta": 2}

    def test_csv_round_trip_preserves_tenants(self, tmp_path):
        trace = _two_tenant_trace()
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert {
            f.name: f.tenant_id for f in loaded.functions.values()
        } == {"alpha": 1, "beta": 2}

    def test_tenantless_json_has_no_tenant_field(self, tmp_path):
        """Tenant-less saves must be byte-compatible with pre-tenancy
        files: no ``tenant_id`` keys may appear anywhere."""
        trace = Trace(
            [TraceFunction("f", 128.0, 0.1, 1.0)],
            [Invocation(0.0, "f")],
        )
        path = tmp_path / "plain.json"
        save_trace_json(trace, path)
        assert "tenant" not in path.read_text()

    def test_columnar_round_trip_preserves_tenants(self):
        trace = _two_tenant_trace()
        col = ColumnarTrace.from_trace(trace)
        assert col.has_tenants
        assert col.tenant_ids() == (1, 2)
        back = col.to_trace()
        assert {
            f.name: f.tenant_id for f in back.functions.values()
        } == {"alpha": 1, "beta": 2}

    def test_streaming_round_robin_tenants(self):
        stream = StreamingChurnTrace(
            num_functions=6, duration_s=60.0, num_tenants=3
        )
        tenants = sorted(
            {f.tenant_id for f in stream.functions_table.objects()}
        )
        assert tenants == [1, 2, 3]


# ---------------------------------------------------------------------------
# Pool tenant modes
# ---------------------------------------------------------------------------


def _container(name, memory_mb, tenant_id, created_at=0.0):
    func = TraceFunction(name, memory_mb, 0.1, 1.0, tenant_id=tenant_id)
    return Container(func, created_at)


class TestPoolModes:
    def test_shared_mode_rejects_limits(self):
        with pytest.raises(ValueError):
            ContainerPool(1024.0, tenant_mode="shared",
                          tenant_limits_mb={1: 512.0})

    def test_non_shared_requires_limits(self):
        with pytest.raises(ValueError):
            ContainerPool(1024.0, tenant_mode="quota")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ContainerPool(1024.0, tenant_mode="bursty")

    def test_partitioned_slices_must_fit_capacity(self):
        with pytest.raises(CapacityError):
            ContainerPool(
                1024.0,
                tenant_mode="partitioned",
                tenant_limits_mb={1: 768.0, 2: 512.0},
            )

    def test_partitioned_enforces_per_tenant_slice(self):
        pool = ContainerPool(
            1024.0,
            tenant_mode="partitioned",
            tenant_limits_mb={1: 256.0, 2: 768.0},
        )
        pool.add(_container("a", 256.0, tenant_id=1))
        # Tenant 1's slice is now full even though the pool is not.
        with pytest.raises(CapacityError):
            pool.add(_container("a2", 128.0, tenant_id=1))
        pool.add(_container("b", 512.0, tenant_id=2))
        assert pool.tenant_used_mb(1) == 256.0
        assert pool.tenant_free_mb(1) == 0.0

    def test_quota_exceeded_by(self):
        pool = ContainerPool(
            1024.0, tenant_mode="quota", tenant_limits_mb={1: 256.0}
        )
        assert not pool.quota_exceeded_by(1, 256.0)
        assert pool.quota_exceeded_by(1, 257.0)
        # Unlimited tenants never report as over quota.
        assert not pool.quota_exceeded_by(2, 1e9)
        pool.add(_container("a", 256.0, tenant_id=1))
        assert pool.quota_exceeded_by(1, 1.0)
        assert pool.over_quota_tenants() == frozenset()

    def test_tenant_accounting_tracks_add_and_evict(self):
        pool = ContainerPool(1024.0)
        cont = _container("a", 256.0, tenant_id=7)
        pool.add(cont)
        assert pool.tenant_used_mb(7) == 256.0
        assert pool.tenant_container_count(7) == 1
        pool.evict(cont)
        assert pool.tenant_used_mb(7) == 0.0
        assert pool.tenant_container_count(7) == 0


class TestPoolModeSimulations:
    def test_zero_quota_tenant_always_preferentially_evicted(self):
        """A tenant with quota 0 is over-quota the moment it holds any
        memory, so its idle containers go first under pressure."""
        functions = [
            TraceFunction("victim", 512.0, 0.1, 1.0, tenant_id=1),
            TraceFunction("zeroed", 512.0, 0.1, 1.0, tenant_id=2),
        ]
        invocations = [
            Invocation(0.0, "zeroed"),
            Invocation(10.0, "victim"),
            Invocation(20.0, "victim"),
        ]
        trace = Trace(functions, invocations)
        result = simulate(
            trace, "GD", 512.0,
            tenant_mode="quota", tenant_quotas={2: 0.0},
        )
        counters = result.metrics.tenant_counters()
        # The zero-quota tenant's container was displaced, letting the
        # victim tenant warm-hit its second arrival.
        assert counters[1]["warm_starts"] == 1

    def test_partitioned_oversized_function_dropped(self):
        """A function bigger than its tenant's slice can never run in
        partitioned mode — it must be dropped, not wedge the pool."""
        functions = [
            TraceFunction("big", 512.0, 0.1, 1.0, tenant_id=1),
            TraceFunction("small", 128.0, 0.1, 1.0, tenant_id=2),
        ]
        invocations = [Invocation(0.0, "big"), Invocation(1.0, "small")]
        trace = Trace(functions, invocations)
        result = simulate(
            trace, "GD", 1024.0,
            tenant_mode="partitioned",
            tenant_quotas={1: 256.0, 2: 768.0},
        )
        counters = result.metrics.tenant_counters()
        assert counters[1]["dropped"] == 1
        assert counters[2]["cold_starts"] == 1

    def test_partitioned_isolates_thrashing_neighbor(self):
        """An empty slice stays usable no matter how hard the other
        tenant thrashes its own partition."""
        functions = [
            TraceFunction(f"noisy-{i}", 256.0, 0.1, 1.0, tenant_id=1)
            for i in range(8)
        ] + [TraceFunction("quiet", 256.0, 0.1, 1.0, tenant_id=2)]
        invocations = [
            Invocation(float(i), f"noisy-{i % 8}") for i in range(64)
        ] + [Invocation(70.0, "quiet"), Invocation(71.0, "quiet")]
        trace = Trace(functions, invocations)
        result = simulate(
            trace, "GD", 1024.0,
            tenant_mode="partitioned",
            tenant_quotas={1: 768.0, 2: 256.0},
        )
        counters = result.metrics.tenant_counters()
        # The quiet tenant cold-starts once and then warm-hits inside
        # its untouched slice; the noisy tenant never dropped (its own
        # slice churns but admits).
        assert counters[2] == {
            "warm_starts": 1, "cold_starts": 1, "dropped": 0,
        }
        assert counters[1]["dropped"] == 0


# ---------------------------------------------------------------------------
# Weighted GDSF
# ---------------------------------------------------------------------------


class TestTenantWeights:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            GreedyDualPolicy(tenant_weights={1: -0.5})

    def test_weights_bias_eviction_order(self):
        """Under pressure, the low-weight tenant's container goes
        first even with identical access patterns."""
        functions = [
            TraceFunction("gold", 512.0, 0.1, 1.0, tenant_id=1),
            TraceFunction("bronze", 512.0, 0.1, 1.0, tenant_id=2),
            TraceFunction("probe", 512.0, 0.1, 1.0, tenant_id=3),
        ]
        invocations = [
            Invocation(0.0, "gold"),
            Invocation(1.0, "bronze"),
            Invocation(10.0, "probe"),   # forces one eviction
            Invocation(20.0, "gold"),
            Invocation(21.0, "bronze"),
        ]
        trace = Trace(functions, invocations)
        result = simulate(
            trace, "GD", 1024.0,
            tenant_weights={1: 10.0, 2: 0.1},
        )
        counters = result.metrics.tenant_counters()
        assert counters[1]["warm_starts"] == 1   # gold survived
        assert counters[2]["warm_starts"] == 0   # bronze was evicted

    def test_none_weights_identical_to_unweighted(self):
        trace = _two_tenant_trace()
        base = simulate(trace, GreedyDualPolicy(), 512.0)
        weightless = simulate(
            trace, GreedyDualPolicy(tenant_weights=None), 512.0
        )
        assert base.metrics.counters() == weightless.metrics.counters()
        assert (
            base.metrics.tenant_counters()
            == weightless.metrics.tenant_counters()
        )


# ---------------------------------------------------------------------------
# Fairness metrics and the trace/aggregate tenant contract
# ---------------------------------------------------------------------------


class TestFairnessMetrics:
    def test_jain_index_bounds(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.5]) == 1.0
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        # One tenant getting everything over n tenants → 1/n.
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_metrics_tenant_counters_shape(self):
        metrics = SimulationMetrics()
        metrics.record_warm("f", 0.1, tenant_id=1)
        metrics.record_cold("f", 0.1, 1.0, tenant_id=1)
        metrics.record_dropped("g", tenant_id=2)
        assert metrics.tenant_counters() == {
            1: {"warm_starts": 1, "cold_starts": 1, "dropped": 0},
            2: {"warm_starts": 0, "cold_starts": 0, "dropped": 1},
        }

    def test_tenantless_metrics_have_no_tenant_counters(self):
        metrics = SimulationMetrics()
        metrics.record_warm("f", 0.1)
        assert metrics.tenant_counters() == {}
        assert metrics.jain_fairness_index == 1.0

    def test_trace_report_agrees_with_metrics(self):
        trace = _two_tenant_trace()
        sink = RingBufferSink(capacity=100_000)
        result = simulate(
            trace, "GD", 512.0, tracer=Tracer(sink, strict=True)
        )
        report = report_from_events(sink)
        assert (
            report.tenant_counters() == result.metrics.tenant_counters()
        )
        assert report.jain_fairness_index == pytest.approx(
            result.metrics.jain_fairness_index
        )
        # The runtime sanitizer check accepts the matching snapshot...
        check_tenant_counter_equality(
            report, result.metrics.tenant_counters()
        )
        # ...and rejects a drifted one.
        drifted = {
            tid: dict(counts, warm_starts=counts["warm_starts"] + 1)
            for tid, counts in result.metrics.tenant_counters().items()
        }
        with pytest.raises(SanitizeError):
            check_tenant_counter_equality(report, drifted)

    def test_report_check_tenant_counters(self):
        trace = _two_tenant_trace()
        sink = RingBufferSink(capacity=100_000)
        result = simulate(
            trace, "GD", 512.0, tracer=Tracer(sink, strict=True)
        )
        report = report_from_events(sink)
        assert (
            report.check_tenant_counters(
                result.metrics.tenant_counters()
            )
            == []
        )
        mismatches = report.check_tenant_counters(
            {99: {"warm_starts": 1, "cold_starts": 0, "dropped": 0}}
        )
        assert any("tenant 99" in m for m in mismatches)


# ---------------------------------------------------------------------------
# The headline fairness claim and engine agreement
# ---------------------------------------------------------------------------


class TestNoisyNeighbor:
    def test_quota_strictly_improves_jain(self):
        """The acceptance claim: on the noisy-neighbor scenario the
        quota pool's Jain index strictly beats the shared pool's."""
        shared = simulate(
            noisy_neighbor_trace(duration_s=900.0), "GD", 4096.0
        )
        quota = simulate(
            noisy_neighbor_trace(duration_s=900.0), "GD", 4096.0,
            tenant_mode="quota", tenant_quotas={1: 1024.0},
        )
        assert (
            quota.metrics.jain_fairness_index
            > shared.metrics.jain_fairness_index
        )
        # The improvement is dramatic, not marginal.
        assert quota.metrics.jain_fairness_index > 0.9
        assert shared.metrics.jain_fairness_index < 0.1

    def test_object_and_columnar_engines_agree_on_tenants(self):
        kwargs = dict(tenant_mode="quota", tenant_quotas={1: 1024.0})
        obj = simulate(
            noisy_neighbor_trace(duration_s=900.0), "GD", 4096.0,
            engine="object", **kwargs,
        )
        col = simulate(
            noisy_neighbor_trace(duration_s=900.0), "GD", 4096.0,
            engine="columnar", **kwargs,
        )
        assert obj.metrics.counters() == col.metrics.counters()
        assert (
            obj.metrics.tenant_counters() == col.metrics.tenant_counters()
        )
        assert obj.metrics.jain_fairness_index == pytest.approx(
            col.metrics.jain_fairness_index
        )


# ---------------------------------------------------------------------------
# Shared-mode neutrality and fingerprint backward compatibility
# ---------------------------------------------------------------------------


class TestBackwardCompat:
    def test_shared_mode_ignores_tenant_identity(self):
        """Tagging functions with tenants must not change a shared-mode
        replay's aggregate outcome at all."""
        tagged = noisy_neighbor_trace(duration_s=900.0)
        stripped = Trace(
            [
                dataclasses.replace(f, tenant_id=0)
                for f in tagged.functions.values()
            ],
            tagged.invocations,
            name=tagged.name,
        )
        tagged_result = simulate(tagged, "GD", 2048.0)
        stripped_result = simulate(stripped, "GD", 2048.0)
        assert (
            tagged_result.metrics.counters()
            == stripped_result.metrics.counters()
        )

    def test_tenantless_fingerprint_matches_legacy_point(self):
        """A tenant-less SweepPoint must hash exactly as a pre-tenancy
        point with the same values: BASELINE.json stays valid."""
        values = dict(
            policy="GD", memory_gb=1.0, cold_start_pct=12.5,
            exec_time_increase_pct=3.0, drop_ratio=0.0, hit_ratio=0.875,
            global_hit_ratio=0.875, wall_time_s=1.0,
            invocations_per_s=1000.0,
            counters={"warm_starts": 7, "cold_starts": 1},
        )
        modern = SweepPoint(**values)
        legacy_payload = {
            "policy": "GD",
            "memory_gb": repr(1.0),
            "cold_start_pct": repr(12.5),
            "exec_time_increase_pct": repr(3.0),
            "drop_ratio": repr(0.0),
            "hit_ratio": repr(0.875),
            "global_hit_ratio": repr(0.875),
            "counters": {"cold_starts": 1, "warm_starts": 7},
        }
        import hashlib

        legacy = hashlib.sha256(
            json.dumps(
                legacy_payload, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        ).hexdigest()
        assert point_fingerprint(modern) == legacy

    def test_tenant_payload_changes_fingerprint(self):
        base = SweepPoint(
            policy="GD", memory_gb=1.0, cold_start_pct=0.0,
            exec_time_increase_pct=0.0, drop_ratio=0.0, hit_ratio=1.0,
            global_hit_ratio=1.0, wall_time_s=0.0, invocations_per_s=0.0,
            counters={"warm_starts": 1},
        )
        tenanted = dataclasses.replace(
            base,
            tenant_counters={
                "1": {"warm_starts": 1, "cold_starts": 0, "dropped": 0}
            },
            jain_fairness_index=1.0,
        )
        assert point_fingerprint(base) != point_fingerprint(tenanted)

    def test_run_cell_carries_tenant_counters(self):
        point = run_cell(
            _two_tenant_trace(), "GD", 512.0 / 1024.0,
            tenant_mode="quota", tenant_quotas={1: 256.0},
        )
        assert set(point.tenant_counters) == {"1", "2"}
        assert 0.0 < point.jain_fairness_index <= 1.0


# ---------------------------------------------------------------------------
# CLI flag parsing
# ---------------------------------------------------------------------------


class TestCliTenantFlags:
    def test_parse_tenant_map(self):
        assert _parse_tenant_map(None, "--tenant-quota") is None
        assert _parse_tenant_map([], "--tenant-quota") is None
        assert _parse_tenant_map(
            ["1=1024", "2=512.5"], "--tenant-quota"
        ) == {1: 1024.0, 2: 512.5}

    @pytest.mark.parametrize(
        "spec", ["nope", "1:1024", "x=1024", "1=lots"]
    )
    def test_parse_tenant_map_rejects_bad_specs(self, spec):
        with pytest.raises(SystemExit):
            _parse_tenant_map([spec], "--tenant-quota")

"""Unit tests for the Landlord (LND) policy."""

import pytest

from repro.core.container import Container
from repro.core.policies.landlord import LandlordPolicy
from repro.core.pool import ContainerPool
from tests.conftest import make_function


def admit(policy, pool, function, now=0.0):
    c = Container(function, now)
    pool.add(c)
    policy.on_cold_start(c, now, pool)
    return c


class TestCredits:
    def test_credit_set_to_init_cost_on_cold_start(self):
        policy = LandlordPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A", warm_time_s=1.0, cold_time_s=4.0)
        c = admit(policy, pool, f)
        assert c.credit == pytest.approx(3.0)

    def test_credit_refreshed_on_hit(self):
        policy = LandlordPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A", warm_time_s=1.0, cold_time_s=4.0)
        c = admit(policy, pool, f)
        c.credit = 0.5
        policy.on_warm_start(c, 10.0, pool)
        assert c.credit == pytest.approx(3.0)

    def test_zero_cost_function_gets_positive_credit(self):
        policy = LandlordPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A", warm_time_s=2.0, cold_time_s=2.0)
        c = admit(policy, pool, f)
        assert c.credit > 0.0


class TestRentCharging:
    def test_rent_charged_to_all_idle_containers(self):
        policy = LandlordPolicy()
        pool = ContainerPool(300.0)
        # Same size; A has less credit, so A is the first victim.
        a = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        b = make_function("B", memory_mb=100.0, warm_time_s=1.0, cold_time_s=5.0)
        ca = admit(policy, pool, a)
        cb = admit(policy, pool, b)
        victims = policy.select_victims(pool, 200.0, 10.0)
        assert victims == [ca]
        # B paid rent delta * size = (1.0 / 100) * 100 = 1.0 credit.
        assert cb.credit == pytest.approx(4.0 - 1.0)

    def test_victim_credit_is_zero(self):
        policy = LandlordPolicy()
        pool = ContainerPool(200.0)
        a = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        ca = admit(policy, pool, a)
        victims = policy.select_victims(pool, 200.0, 10.0)
        assert victims == [ca]
        assert ca.credit == 0.0

    def test_rent_depends_on_size_density(self):
        policy = LandlordPolicy()
        pool = ContainerPool(600.0)
        # Big container: cost 4 over 500 MB -> density 0.008;
        # small container: cost 1 over 100 MB -> density 0.01.
        # The big one has the *lower* density, so it goes first.
        big = make_function("B", memory_mb=500.0, warm_time_s=1.0, cold_time_s=5.0)
        small = make_function("S", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        cb = admit(policy, pool, big)
        cs = admit(policy, pool, small)
        victims = policy.select_victims(pool, 450.0, 10.0)
        assert victims == [cb]
        assert cs.credit < 1.0  # rent was charged

    def test_multiple_rounds_until_enough_space(self):
        policy = LandlordPolicy()
        pool = ContainerPool(300.0)
        functions = [
            make_function(n, memory_mb=100.0, warm_time_s=1.0, cold_time_s=c)
            for n, c in (("A", 2.0), ("B", 3.0), ("C", 4.0))
        ]
        containers = [admit(policy, pool, f) for f in functions]
        victims = policy.select_victims(pool, 250.0, 10.0)
        assert len(victims) >= 2
        # Victims are the lowest-credit-density containers.
        assert containers[0] in victims
        assert containers[1] in victims

    def test_returns_none_when_unsatisfiable(self):
        policy = LandlordPolicy()
        pool = ContainerPool(100.0)
        c = admit(policy, pool, make_function("A", memory_mb=100.0))
        c.start_invocation(0.0, 100.0)
        assert policy.select_victims(pool, 100.0, 1.0) is None

    def test_no_eviction_needed_returns_empty(self):
        policy = LandlordPolicy()
        pool = ContainerPool(1000.0)
        admit(policy, pool, make_function("A", memory_mb=100.0))
        assert policy.select_victims(pool, 100.0, 1.0) == []

    def test_hit_refresh_keeps_surviving_rent_rounds(self):
        """A refreshed high-cost container outlives churned peers."""
        policy = LandlordPolicy()
        pool = ContainerPool(300.0)
        hot = make_function("H", memory_mb=100.0, warm_time_s=1.0, cold_time_s=6.0)
        churn = make_function("C", memory_mb=100.0, warm_time_s=1.0, cold_time_s=3.0)
        ch = admit(policy, pool, hot)
        cc = admit(policy, pool, churn)
        for round_ in range(3):
            now = 10.0 * (round_ + 1)
            victims = policy.select_victims(pool, 200.0, now)
            assert victims == [cc]
            for v in victims:
                pool.evict(v)
                policy.on_evict(v, now, pool, pressure=True)
            # The survivor is hit (credit refreshed to full cost)...
            policy.on_warm_start(ch, now, pool)
            assert ch.credit == pytest.approx(5.0)
            # ...and the churned function comes back cold.
            cc = admit(policy, pool, churn, now)

    def test_evicts_only_enough_zero_credit_containers(self):
        """Equal-density peers zero together, but only the needed
        amount is evicted; survivors keep zero credit for next time."""
        policy = LandlordPolicy()
        pool = ContainerPool(300.0)
        a = make_function("A", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        b = make_function("B", memory_mb=100.0, warm_time_s=1.0, cold_time_s=2.0)
        ca = admit(policy, pool, a)
        cb = admit(policy, pool, b)
        victims = policy.select_victims(pool, 200.0, 10.0)
        assert len(victims) == 1
        survivor = cb if victims == [ca] else ca
        assert survivor.credit == pytest.approx(0.0)

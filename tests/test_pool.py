"""Unit tests for the container pool."""

import pytest

from repro.core.container import Container
from repro.core.pool import CapacityError, ContainerPool
from tests.conftest import make_function


def pooled(pool, function, created_at=0.0):
    c = Container(function, created_at)
    pool.add(c)
    return c


class TestCapacityAccounting:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ContainerPool(0.0)

    def test_add_updates_usage(self):
        pool = ContainerPool(1000.0)
        pooled(pool, make_function(memory_mb=300.0))
        assert pool.used_mb == 300.0
        assert pool.free_mb == 700.0

    def test_add_over_capacity_raises(self):
        pool = ContainerPool(250.0)
        with pytest.raises(CapacityError):
            pooled(pool, make_function(memory_mb=300.0))

    def test_evict_restores_capacity(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool, make_function(memory_mb=300.0))
        pool.evict(c)
        assert pool.used_mb == 0.0
        assert len(pool) == 0

    def test_can_fit(self):
        pool = ContainerPool(500.0)
        assert pool.can_fit(500.0)
        pooled(pool, make_function(memory_mb=300.0))
        assert pool.can_fit(200.0)
        assert not pool.can_fit(201.0)

    def test_repeated_add_evict_no_drift(self):
        pool = ContainerPool(1000.0)
        f = make_function(memory_mb=333.33)
        for __ in range(100):
            c = pooled(pool, f)
            pool.evict(c)
        assert pool.used_mb == 0.0

    def test_set_capacity_grow(self):
        pool = ContainerPool(500.0)
        pool.set_capacity(1000.0)
        assert pool.capacity_mb == 1000.0

    def test_set_capacity_below_usage_raises(self):
        pool = ContainerPool(1000.0)
        pooled(pool, make_function(memory_mb=600.0))
        with pytest.raises(CapacityError):
            pool.set_capacity(500.0)

    def test_set_capacity_to_exact_usage(self):
        pool = ContainerPool(1000.0)
        pooled(pool, make_function(memory_mb=600.0))
        pool.set_capacity(600.0)
        assert pool.free_mb == pytest.approx(0.0)


class TestMembership:
    def test_cannot_add_twice(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool, make_function())
        with pytest.raises(ValueError):
            pool.add(c)

    def test_cannot_add_dead_container(self):
        pool = ContainerPool(1000.0)
        c = Container(make_function(), 0.0)
        c.terminate()
        with pytest.raises(ValueError):
            pool.add(c)

    def test_evict_unknown_raises(self):
        pool = ContainerPool(1000.0)
        c = Container(make_function(), 0.0)
        with pytest.raises(KeyError):
            pool.evict(c)

    def test_evict_running_raises_and_keeps_container(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool, make_function())
        c.start_invocation(0.0, 5.0)
        with pytest.raises(RuntimeError):
            pool.evict(c)
        assert c in pool
        assert pool.used_mb == c.memory_mb

    def test_contains(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool, make_function())
        assert c in pool
        pool.evict(c)
        assert c not in pool


class TestQueries:
    def test_idle_warm_container_prefers_lru(self):
        pool = ContainerPool(1000.0)
        f = make_function("A", memory_mb=100.0)
        old = pooled(pool, f, created_at=0.0)
        new = pooled(pool, f, created_at=50.0)
        found = pool.idle_warm_container("A")
        assert found is old

    def test_idle_warm_container_skips_running(self):
        pool = ContainerPool(1000.0)
        f = make_function("A", memory_mb=100.0)
        c = pooled(pool, f)
        c.start_invocation(0.0, 10.0)
        assert pool.idle_warm_container("A") is None

    def test_idle_warm_container_unknown_function(self):
        pool = ContainerPool(1000.0)
        assert pool.idle_warm_container("missing") is None

    def test_containers_of_and_names(self):
        pool = ContainerPool(1000.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        pooled(pool, a)
        pooled(pool, a)
        pooled(pool, b)
        assert len(pool.containers_of("A")) == 2
        assert pool.function_names() == ["A", "B"]
        assert pool.has_containers_of("A")
        assert not pool.has_containers_of("Z")

    def test_has_containers_cleared_after_last_eviction(self):
        pool = ContainerPool(1000.0)
        c = pooled(pool, make_function("A"))
        pool.evict(c)
        assert not pool.has_containers_of("A")

    def test_idle_and_running_partition(self):
        pool = ContainerPool(1000.0)
        f = make_function("A", memory_mb=100.0)
        idle = pooled(pool, f)
        running = pooled(pool, f)
        running.start_invocation(0.0, 10.0)
        assert pool.idle_containers() == [idle]
        assert pool.running_containers() == [running]
        assert set(pool.all_containers()) == {idle, running}

    def test_evictable_mb(self):
        pool = ContainerPool(1000.0)
        f = make_function("A", memory_mb=100.0)
        pooled(pool, f)
        busy = pooled(pool, f)
        busy.start_invocation(0.0, 10.0)
        assert pool.evictable_mb() == pytest.approx(100.0)

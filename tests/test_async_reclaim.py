"""Tests for the kswapd-style asynchronous background reclaim."""

import pytest

from repro.core.function import FunctionStatsTable
from repro.openwhisk.containerpool import (
    InvokerContainerPool,
    OnlineGreedyDualPolicy,
)
from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.traces.model import Invocation, Trace
from repro.traces.synth import cyclic_trace
from tests.conftest import make_function


def make_pool(capacity, threshold, async_reclaim=True, **kwargs):
    stats = FunctionStatsTable()
    return InvokerContainerPool(
        capacity,
        OnlineGreedyDualPolicy(stats),
        free_threshold_mb=threshold,
        stats=stats,
        async_reclaim=async_reclaim,
        **kwargs,
    )


def fill_with_idle(pool, count, size_mb=100.0, base_time=0.0):
    containers = []
    for i in range(count):
        f = make_function(f"f{i}", memory_mb=size_mb)
        pool.record_arrival(f, base_time + i)
        c, kind = pool.acquire(f, base_time + i)
        assert kind == "miss"
        c.start_invocation(base_time + i, 0.5)
        pool.notify_start(c, kind, base_time + i)
        pool.release(c, base_time + i + 0.5, kind, 0.5)
        containers.append(c)
    return containers


class TestMaintain:
    def test_reclaims_to_threshold(self):
        pool = make_pool(capacity=500.0, threshold=200.0)
        fill_with_idle(pool, 5)
        assert pool.pool.free_mb == pytest.approx(0.0)
        reclaimed = pool.maintain(10.0)
        assert reclaimed == 2
        assert pool.pool.free_mb >= 200.0
        assert pool.background_evictions == 2

    def test_noop_without_async_flag(self):
        pool = make_pool(capacity=500.0, threshold=200.0, async_reclaim=False)
        fill_with_idle(pool, 4)
        free_before = pool.pool.free_mb
        assert pool.maintain(10.0) == 0
        assert pool.pool.free_mb == pytest.approx(free_before)
        assert pool.background_evictions == 0

    def test_noop_without_threshold(self):
        pool = make_pool(capacity=500.0, threshold=0.0)
        fill_with_idle(pool, 5)
        assert pool.maintain(10.0) == 0

    def test_background_evictions_charge_no_latency(self):
        pool = make_pool(
            capacity=500.0,
            threshold=200.0,
            eviction_event_latency_s=1.0,
            eviction_per_container_s=1.0,
        )
        fill_with_idle(pool, 5)
        pool.maintain(10.0)
        assert pool.take_eviction_latency() == 0.0

    def test_running_containers_not_reclaimed(self):
        pool = make_pool(capacity=300.0, threshold=300.0)
        containers = fill_with_idle(pool, 3)
        for c in containers:
            c.start_invocation(20.0, 100.0)
        assert pool.maintain(21.0) == 0

    def test_sync_eviction_skips_batching_under_async(self):
        pool = make_pool(capacity=300.0, threshold=300.0)
        fill_with_idle(pool, 3)
        # A synchronous miss needing 100 MB should evict exactly one
        # container (no batch-to-threshold on the fast path).
        g = make_function("g", memory_mb=100.0)
        pool.record_arrival(g, 50.0)
        c, kind = pool.acquire(g, 50.0)
        assert kind == "miss"
        assert pool.evictions == 1


class TestInvokerIntegration:
    def test_async_reclaim_reduces_cold_latency(self):
        """With background reclaim sized to one container, cold starts
        stop paying the eviction slow path: with uniform container
        sizes (so hit behaviour is identical in both modes), every
        eviction-bound cold start gets cheaper."""
        trace = cyclic_trace(
            num_functions=12,
            cycle_gap_s=2.0,
            num_cycles=80,
            memory_choices_mb=(256.0,),
            init_choices_s=(2.0,),
        )
        base = dict(
            memory_mb=1664.0,
            cpu_cores=8,
            free_threshold_mb=256.0,
            eviction_event_latency_s=1.0,
            eviction_per_container_s=0.5,
        )
        sync = SimulatedInvoker(InvokerConfig(**base), policy="GD").run(trace)
        async_ = SimulatedInvoker(
            InvokerConfig(**base, async_reclaim=True), policy="GD"
        ).run(trace)
        assert async_.cold_starts == sync.cold_starts
        assert async_.mean_latency_s() < sync.mean_latency_s() - 0.5

    def test_async_reclaim_counts_background_evictions(self):
        trace = cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=40)
        invoker = SimulatedInvoker(
            InvokerConfig(
                memory_mb=1664.0,
                cpu_cores=8,
                free_threshold_mb=256.0,
                async_reclaim=True,
            ),
            policy="GD",
        )
        invoker.run(trace)
        assert invoker.pool.background_evictions > 0

"""Tests for the workload-characterization toolkit."""

import pytest

from repro.analysis.workload import (
    WorkloadProfile,
    diurnal_peak_to_mean,
    gini_coefficient,
    orders_of_magnitude,
    profile_trace,
    top_share,
)
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace
from tests.conftest import make_trace


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_concentration_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.95

    def test_known_value(self):
        # For [1, 3]: Gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([-1.0])

    def test_all_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0


class TestTopShare:
    def test_uniform(self):
        assert top_share([1.0] * 10, fraction=0.1) == pytest.approx(0.1)

    def test_concentrated(self):
        values = [1.0] * 9 + [91.0]
        assert top_share(values, fraction=0.1) == pytest.approx(0.91)

    def test_validation(self):
        with pytest.raises(ValueError):
            top_share([1.0], fraction=0.0)
        with pytest.raises(ValueError):
            top_share([], fraction=0.5)


class TestOrdersOfMagnitude:
    def test_three_orders(self):
        assert orders_of_magnitude([1.0, 1000.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert orders_of_magnitude([0.0, 1.0, 100.0]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            orders_of_magnitude([0.0])


class TestDiurnal:
    def test_uniform_trace_ratio_near_one(self):
        trace = make_trace("AB" * 500, gap_s=10.0)
        assert diurnal_peak_to_mean(trace, window_s=1000.0) == pytest.approx(
            1.0, abs=0.1
        )

    def test_bursty_trace_high_ratio(self):
        from repro.traces.model import Invocation, Trace
        from tests.conftest import make_function

        f = make_function("A")
        invocations = [Invocation(0.001 * i, "A") for i in range(100)]
        invocations += [Invocation(10_000.0, "A")]
        trace = Trace([f], invocations)
        assert diurnal_peak_to_mean(trace, window_s=100.0) > 10.0

    def test_empty_trace(self):
        from repro.traces.model import Trace
        from tests.conftest import make_function

        trace = Trace([make_function("A")], [])
        assert diurnal_peak_to_mean(trace) == 0.0


class TestProfileTrace:
    def test_profile_fields(self):
        trace = make_trace("AABBBAB" * 20, gap_s=5.0)
        profile = profile_trace(trace)
        assert profile.num_functions == 2
        assert profile.num_invocations == 140
        assert 0.0 <= profile.popularity_gini < 1.0
        assert len(profile.rows()) == 12

    def test_synthetic_dataset_has_paper_properties(self):
        """The generator must exhibit the Section 3 claims: heavy
        tails spanning orders of magnitude and a ~2x diurnal peak."""
        dataset = generate_azure_dataset(
            AzureGeneratorConfig(num_functions=800, max_daily_invocations=20_000),
            seed=3,
        )
        trace = dataset_to_trace(dataset)
        profile = profile_trace(trace)
        assert profile.iat_orders_of_magnitude >= 2.0
        assert profile.memory_orders_of_magnitude >= 1.0
        assert profile.popularity_top10_share > 0.5  # heavy hitters
        assert 1.5 <= profile.diurnal_peak_to_mean <= 3.0

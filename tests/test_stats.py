"""Unit tests for repro.analysis.stats."""

import math

import pytest

from repro.analysis.stats import EWMA, EmpiricalCDF, Welford, mean, percentile


class TestWelford:
    def test_empty(self):
        w = Welford()
        assert w.count == 0
        assert w.mean == 0.0
        assert w.variance == 0.0
        assert w.coefficient_of_variation == 0.0

    def test_single_value(self):
        w = Welford()
        w.update(5.0)
        assert w.count == 1
        assert w.mean == 5.0
        assert w.variance == 0.0

    def test_known_values(self):
        w = Welford()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            w.update(x)
        assert w.mean == pytest.approx(5.0)
        assert w.variance == pytest.approx(32.0 / 7.0)

    def test_matches_two_pass_computation(self):
        data = [1.5, -2.0, 3.7, 0.0, 8.8, 8.8, -5.1]
        w = Welford()
        for x in data:
            w.update(x)
        m = sum(data) / len(data)
        var = sum((x - m) ** 2 for x in data) / (len(data) - 1)
        assert w.mean == pytest.approx(m)
        assert w.variance == pytest.approx(var)

    def test_constant_stream_zero_cov(self):
        w = Welford()
        for __ in range(10):
            w.update(3.0)
        assert w.variance == pytest.approx(0.0)
        assert w.coefficient_of_variation == pytest.approx(0.0)

    def test_cov_definition(self):
        w = Welford()
        for x in [1.0, 3.0]:
            w.update(x)
        assert w.coefficient_of_variation == pytest.approx(w.stddev / 2.0)

    def test_cov_zero_mean_with_variance_is_inf(self):
        w = Welford()
        for x in [-1.0, 1.0]:
            w.update(x)
        assert math.isinf(w.coefficient_of_variation)

    def test_merge_equals_combined_stream(self):
        a, b, combined = Welford(), Welford(), Welford()
        for x in [1.0, 2.0, 3.0]:
            a.update(x)
            combined.update(x)
        for x in [10.0, 20.0]:
            b.update(x)
            combined.update(x)
        merged = a.merge(b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        a = Welford()
        a.update(4.0)
        merged = a.merge(Welford())
        assert merged.count == 1
        assert merged.mean == 4.0
        merged2 = Welford().merge(a)
        assert merged2.count == 1

    def test_repr(self):
        w = Welford()
        w.update(1.0)
        assert "Welford" in repr(w)


class TestEWMA:
    def test_requires_valid_alpha(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)

    def test_first_observation_sets_value(self):
        e = EWMA(alpha=0.5)
        assert not e.initialized
        e.update(10.0)
        assert e.value == 10.0

    def test_smoothing(self):
        e = EWMA(alpha=0.5, initial=0.0)
        e.update(10.0)
        assert e.value == pytest.approx(5.0)
        e.update(10.0)
        assert e.value == pytest.approx(7.5)

    def test_alpha_one_tracks_exactly(self):
        e = EWMA(alpha=1.0)
        for x in [3.0, 7.0, -2.0]:
            e.update(x)
            assert e.value == x

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            EWMA().value

    def test_converges_to_constant(self):
        e = EWMA(alpha=0.3, initial=100.0)
        for __ in range(200):
            e.update(5.0)
        assert e.value == pytest.approx(5.0, abs=1e-6)


class TestEmpiricalCDF:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_basic_evaluation(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == pytest.approx(0.25)
        assert cdf.evaluate(2.5) == pytest.approx(0.5)
        assert cdf.evaluate(4.0) == pytest.approx(1.0)
        assert cdf.evaluate(100.0) == pytest.approx(1.0)

    def test_duplicates_collapse(self):
        cdf = EmpiricalCDF.from_samples([1.0, 1.0, 2.0])
        assert len(cdf) == 2
        assert cdf.evaluate(1.0) == pytest.approx(2.0 / 3.0)

    def test_weighted(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0], weights=[3.0, 1.0])
        assert cdf.evaluate(1.0) == pytest.approx(0.75)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([1.0], weights=[-1.0])

    def test_quantile_inverts_cdf(self):
        cdf = EmpiricalCDF.from_samples([10.0, 20.0, 30.0, 40.0])
        assert cdf.quantile(0.25) == 10.0
        assert cdf.quantile(0.5) == 20.0
        assert cdf.quantile(1.0) == 40.0
        assert cdf.quantile(0.0) == 10.0

    def test_quantile_range_check(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_callable(self):
        cdf = EmpiricalCDF.from_samples([5.0])
        assert cdf(5.0) == 1.0


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_range_check(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_nearest_rank(self):
        data = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(data, 30.0) == 20.0
        assert percentile(data, 40.0) == 20.0
        assert percentile(data, 100.0) == 50.0
        assert percentile(data, 0.0) == 15.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100.0) == 3.0


class TestMean:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

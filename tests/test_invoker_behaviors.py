"""Deeper invoker scenarios: ordering, fairness, feature interactions."""

import pytest

from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.openwhisk.latency import ColdStartModel
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_function


def run(trace, **config_kwargs):
    defaults = dict(memory_mb=2048.0, cpu_cores=8)
    defaults.update(config_kwargs)
    invoker = SimulatedInvoker(InvokerConfig(**defaults), policy="GD")
    return invoker.run(trace), invoker


class TestQueueFairness:
    def test_blocked_large_function_does_not_block_small_ones(self):
        """Per-action buffering: a big function waiting for memory
        must not head-of-line-block small warm-servable requests."""
        big = make_function("big", memory_mb=1500.0, warm_time_s=60.0,
                            cold_time_s=70.0)
        small = make_function("small", memory_mb=100.0, warm_time_s=0.1,
                              cold_time_s=0.5)
        invocations = [
            Invocation(0.0, "big"),      # occupies most of the pool
            Invocation(1.0, "big"),      # cannot fit: queues
            Invocation(2.0, "small"),    # must be served promptly
        ]
        trace = Trace([big, small], invocations)
        result, __ = run(trace, memory_mb=2000.0, request_timeout_s=200.0)
        small_record = next(
            r for r in result.records if r.function_name == "small"
        )
        assert small_record.outcome in ("hit", "miss")
        assert small_record.start_s == pytest.approx(2.0)

    def test_queued_requests_served_in_arrival_order_when_possible(self):
        f = make_function("A", memory_mb=100.0, warm_time_s=5.0,
                          cold_time_s=6.0)
        invocations = [Invocation(0.1 * i, "A") for i in range(4)]
        trace = Trace([f], invocations)
        result, __ = run(trace, cpu_cores=1, request_timeout_s=100.0,
                         max_concurrent_launches=4)
        starts = [r.start_s for r in result.records]
        assert starts == sorted(starts)


class TestFeatureInteractions:
    def test_stems_and_eviction_latency_compose(self):
        """A cold start that both takes a stem and triggered an
        eviction pays the eviction stall but not the Docker phase."""
        model = ColdStartModel()
        a = make_function("A", memory_mb=900.0, warm_time_s=0.5,
                          cold_time_s=2.0)
        b = make_function("B", memory_mb=900.0, warm_time_s=0.5,
                          cold_time_s=2.0)
        invocations = [Invocation(0.0, "A"), Invocation(10.0, "B")]
        trace = Trace([a, b], invocations)
        result, invoker = run(
            trace,
            memory_mb=1256.0,  # 1000 MB pool after 1 stem of 256
            stem_cell_count=1,
            eviction_event_latency_s=1.0,
            eviction_per_container_s=0.5,
            request_timeout_s=100.0,
        )
        b_record = next(r for r in result.records if r.function_name == "B")
        # B evicted A (stall 1.5 s) but found a stem (saves 0.45 s);
        # its stem was consumed by A's start though — A took the stem,
        # then it was replenished after docker_startup_s, well before
        # t=10. So B also stems.
        expected = (
            model.cold_duration_s(b)
            - model.docker_startup_s  # stem
            + 1.5  # eviction stall
        )
        assert b_record.latency_s == pytest.approx(expected)
        assert invoker.stem_hits == 2

    def test_controller_with_stems(self):
        """The Figure 4 controller coexists with the stem pool."""
        from repro.provisioning.controller import ProportionalController
        from repro.provisioning.hit_ratio import HitRatioCurve
        from repro.provisioning.reuse_distance import reuse_distances
        from repro.traces.synth import multitenant_trace

        trace = multitenant_trace(duration_s=1800.0, num_tenants=12)
        curve = HitRatioCurve.from_distances(reuse_distances(trace))
        controller = ProportionalController.from_miss_ratio_target(
            curve,
            desired_miss_ratio=0.05,
            mean_arrival_rate=trace.arrival_rate(),
            initial_size_mb=7680.0,
            max_size_mb=7680.0,
            control_period_s=300.0,
        )
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=8192.0, cpu_cores=16, stem_cell_count=2),
            policy="GD",
            controller=controller,
        )
        result = invoker.run(trace)
        assert result.served + result.dropped == len(trace)
        assert controller.history

    def test_async_reclaim_with_expiring_policy(self):
        """kswapd-style reclaim composes with TTL expiry."""
        from repro.traces.synth import cyclic_trace

        trace = cyclic_trace(
            num_functions=10, cycle_gap_s=2.0, num_cycles=30,
            memory_choices_mb=(256.0,), init_choices_s=(1.0,),
        )
        invoker = SimulatedInvoker(
            InvokerConfig(
                memory_mb=1536.0,
                cpu_cores=8,
                free_threshold_mb=256.0,
                async_reclaim=True,
            ),
            policy="TTL",
        )
        result = invoker.run(trace)
        assert result.served + result.dropped == len(trace)
        assert invoker.pool.background_evictions > 0


class TestLatencyComposition:
    def test_latency_equals_queue_wait_plus_service(self):
        f = make_function("A", memory_mb=100.0, warm_time_s=5.0,
                          cold_time_s=6.0)
        invocations = [Invocation(0.0, "A"), Invocation(0.5, "A")]
        trace = Trace([f], invocations)
        result, __ = run(trace, cpu_cores=1, request_timeout_s=100.0)
        for record in result.records:
            if record.completion_s is None:
                continue
            assert record.latency_s == pytest.approx(
                record.queue_wait_s + record.service_s
            )

    def test_per_function_percentiles(self):
        from repro.traces.synth import figure8_trace

        trace = figure8_trace(duration_s=120.0)
        result, __ = run(trace, memory_mb=4096.0)
        for name in trace.functions:
            p50 = result.percentile_latency_s(50.0, name)
            p99 = result.percentile_latency_s(99.0, name)
            assert 0.0 < p50 <= p99

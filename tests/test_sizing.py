"""Tests for multi-dimensional size scalarization."""

import math

import pytest

from repro.core.sizing import ResourceVector, SizingStrategy, scalar_size


class TestResourceVector:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(memory_mb=-1.0)

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            ResourceVector(memory_mb=0.0, cpu_cores=0.0, io_mbps=0.0)

    def test_magnitude(self):
        v = ResourceVector(memory_mb=3.0, cpu_cores=4.0)
        assert v.magnitude == pytest.approx(5.0)

    def test_normalized_sum(self):
        demand = ResourceVector(memory_mb=512.0, cpu_cores=2.0)
        capacity = ResourceVector(memory_mb=2048.0, cpu_cores=8.0)
        assert demand.normalized_sum(capacity) == pytest.approx(0.25 + 0.25)

    def test_normalized_sum_missing_capacity_dimension(self):
        demand = ResourceVector(memory_mb=100.0, io_mbps=5.0)
        capacity = ResourceVector(memory_mb=1000.0)  # no I/O capacity
        with pytest.raises(ValueError):
            demand.normalized_sum(capacity)

    def test_cosine_similarity_aligned(self):
        d = ResourceVector(memory_mb=100.0, cpu_cores=1.0)
        a = ResourceVector(memory_mb=200.0, cpu_cores=2.0)
        assert d.cosine_similarity(a) == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        d = ResourceVector(memory_mb=100.0)
        a = ResourceVector(memory_mb=1e-12, cpu_cores=8.0)
        assert d.cosine_similarity(a) == pytest.approx(0.0, abs=1e-6)


class TestScalarSize:
    def test_memory_only_default(self):
        d = ResourceVector(memory_mb=300.0, cpu_cores=4.0, io_mbps=50.0)
        assert scalar_size(d) == 300.0

    def test_magnitude_strategy(self):
        d = ResourceVector(memory_mb=3.0, cpu_cores=4.0)
        assert scalar_size(d, SizingStrategy.MAGNITUDE) == pytest.approx(5.0)

    def test_normalized_sum_requires_capacity(self):
        d = ResourceVector(memory_mb=100.0)
        with pytest.raises(ValueError):
            scalar_size(d, SizingStrategy.NORMALIZED_SUM)

    def test_normalized_sum_strategy(self):
        d = ResourceVector(memory_mb=512.0)
        a = ResourceVector(memory_mb=2048.0)
        value = scalar_size(d, SizingStrategy.NORMALIZED_SUM, capacity=a)
        assert value == pytest.approx(0.25)

    def test_cosine_penalizes_misaligned_demand(self):
        capacity = ResourceVector(memory_mb=1000.0, cpu_cores=1e-9)
        aligned = ResourceVector(memory_mb=100.0)
        misaligned = ResourceVector(memory_mb=1e-9, cpu_cores=100.0)
        size_aligned = scalar_size(aligned, SizingStrategy.COSINE, capacity)
        size_misaligned = scalar_size(
            misaligned, SizingStrategy.COSINE, capacity
        )
        # Equal magnitudes, but the misaligned demand scores larger.
        assert size_misaligned > 1.5 * size_aligned

    def test_all_strategies_positive(self):
        d = ResourceVector(memory_mb=100.0, cpu_cores=2.0, io_mbps=10.0)
        a = ResourceVector(memory_mb=1000.0, cpu_cores=8.0, io_mbps=100.0)
        for strategy in SizingStrategy:
            assert scalar_size(d, strategy, capacity=a) > 0.0

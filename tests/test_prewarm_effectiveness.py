"""Tests for the explicit-initialization / prewarm-effectiveness model."""

import pytest

from repro.core.policies.histogram import HistogramPolicy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction


def sparse_predictable_trace(iat_s=600.0, rounds=12):
    """One function with metronomic 10-minute IATs: HIST learns the
    pattern, releases the container, and prewarms before each arrival."""
    f = TraceFunction("A", 256.0, warm_time_s=1.0, cold_time_s=6.0)
    invocations = [Invocation(i * iat_s, "A") for i in range(rounds)]
    return Trace([f], invocations, name="sparse")


def run_hist(prewarm_effectiveness):
    trace = sparse_predictable_trace()
    sim = KeepAliveSimulator(
        trace,
        HistogramPolicy(min_samples=2),
        memory_mb=10_000.0,
        prewarm_effectiveness=prewarm_effectiveness,
    )
    return sim.run().metrics


class TestPrewarmEffectiveness:
    def test_validation(self):
        trace = sparse_predictable_trace(rounds=2)
        with pytest.raises(ValueError):
            KeepAliveSimulator(
                trace, HistogramPolicy(), 1024.0, prewarm_effectiveness=1.5
            )

    def test_prewarms_happen(self):
        metrics = run_hist(1.0)
        assert metrics.prewarms > 0
        assert metrics.warm_starts > 0

    def test_full_effectiveness_means_free_warm_starts(self):
        metrics = run_hist(1.0)
        # Warm starts on prewarmed containers cost nothing extra.
        warm_over_ideal = metrics.actual_exec_time_s - metrics.ideal_exec_time_s
        cold_overhead = metrics.cold_starts * 5.0  # init = 5 s each
        assert warm_over_ideal == pytest.approx(cold_overhead)

    def test_zero_effectiveness_charges_full_init_once(self):
        full = run_hist(1.0)
        none = run_hist(0.0)
        # Same hit pattern...
        assert none.warm_starts == full.warm_starts
        assert none.prewarms == full.prewarms
        # ...but every first use of a prewarmed container pays the
        # 5-second init it would have skipped with explicit init.
        extra = none.actual_exec_time_s - full.actual_exec_time_s
        assert extra == pytest.approx(5.0 * none.prewarms, rel=0.35)
        assert none.exec_time_increase_pct > full.exec_time_increase_pct

    def test_partial_effectiveness_interpolates(self):
        full = run_hist(1.0)
        half = run_hist(0.5)
        none = run_hist(0.0)
        assert (
            full.actual_exec_time_s
            < half.actual_exec_time_s
            < none.actual_exec_time_s
        )

    def test_second_use_of_prewarmed_container_is_free(self):
        """Only the first invocation on a prewarmed container pays the
        leftover init; afterwards it is fully warm."""
        f = TraceFunction("A", 256.0, warm_time_s=1.0, cold_time_s=6.0)
        # Train HIST, then two arrivals in quick succession after a
        # prewarm (the second hits the same, now-initialized container).
        invocations = [Invocation(i * 600.0, "A") for i in range(10)]
        invocations += [Invocation(9 * 600.0 + 5.0, "A")]
        trace = Trace([f], sorted(invocations), name="burst")
        sim = KeepAliveSimulator(
            trace,
            HistogramPolicy(min_samples=2),
            memory_mb=10_000.0,
            prewarm_effectiveness=0.0,
        )
        metrics = sim.run().metrics
        # The burst's second arrival lands while the first still runs
        # (leftover init makes it 6 s long), so it needs a new cold
        # container — but nothing is double-charged: total overhead is
        # bounded by (colds + prewarm-first-uses) * init.
        overhead = metrics.actual_exec_time_s - metrics.ideal_exec_time_s
        assert overhead <= (metrics.cold_starts + metrics.prewarms) * 5.0 + 1e-9

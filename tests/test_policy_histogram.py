"""Unit tests for the HIST (hybrid histogram) policy."""

import pytest

from repro.core.container import Container
from repro.core.policies.histogram import FunctionHistogram, HistogramPolicy
from repro.core.pool import ContainerPool
from tests.conftest import make_function

MIN = 60.0


class TestFunctionHistogram:
    def test_first_arrival_records_nothing(self):
        h = FunctionHistogram(window_minutes=240)
        h.record_arrival(100.0)
        assert h.in_window_count == 0
        assert h.last_arrival_s == 100.0

    def test_iat_bucketing(self):
        h = FunctionHistogram(window_minutes=240)
        h.record_arrival(0.0)
        h.record_arrival(90.0)  # 1.5 minutes -> bucket 1
        assert h.buckets[1] == 1
        assert h.in_window_count == 1

    def test_out_of_window_iat(self):
        h = FunctionHistogram(window_minutes=240)
        h.record_arrival(0.0)
        h.record_arrival(241.0 * MIN)
        assert h.out_of_window == 1
        assert h.in_window_count == 0

    def test_predictable_requires_samples(self):
        h = FunctionHistogram(window_minutes=240)
        assert not h.is_predictable(cov_threshold=2.0, min_samples=2)

    def test_regular_iats_are_predictable(self):
        h = FunctionHistogram(window_minutes=240)
        for i in range(10):
            h.record_arrival(i * 10 * MIN)
        assert h.is_predictable(cov_threshold=2.0, min_samples=2)

    def test_wild_iats_are_unpredictable(self):
        h = FunctionHistogram(window_minutes=240)
        t = 0.0
        # Alternating 1-minute and ~3.9-hour gaps: CoV > 2.
        for i in range(40):
            t += MIN if i % 2 else 232 * MIN
            h.record_arrival(t)
        assert not h.is_predictable(cov_threshold=0.5, min_samples=2)

    def test_mostly_out_of_window_is_unpredictable(self):
        h = FunctionHistogram(window_minutes=240)
        t = 0.0
        for i in range(10):
            t += 300 * MIN  # beyond the window
            h.record_arrival(t)
        h.record_arrival(t + MIN)
        assert not h.is_predictable(cov_threshold=2.0, min_samples=1)

    def test_head_and_tail_windows(self):
        h = FunctionHistogram(window_minutes=240)
        for i in range(100):
            h.record_arrival(i * 10 * MIN)  # all IATs exactly 10 min
        assert h.head_s() == pytest.approx(10 * MIN)
        assert h.tail_s() == pytest.approx(11 * MIN)  # upper bucket edge

    def test_percentiles_on_empty_histogram(self):
        h = FunctionHistogram(window_minutes=240)
        assert h.head_s() == 0.0
        assert h.tail_s() == 0.0
        assert h.mean_iat_s() is None


class TestHistogramPolicyExpiry:
    def test_unpredictable_gets_generic_ttl(self):
        policy = HistogramPolicy(generic_ttl_s=7200.0)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 0.0)
        pool.add(c)
        policy.on_invocation(f, 0.0)
        policy.on_cold_start(c, 0.0, pool)
        assert policy.expired_containers(pool, 7199.0) == []
        expired = policy.expired_containers(pool, 7200.0)
        assert [e[0] for e in expired] == [c]

    def test_frequent_predictable_keeps_through_tail(self):
        policy = HistogramPolicy(min_samples=2)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 0.0)
        pool.add(c)
        # Train: IATs of ~30 s (bucket 0 -> head 0, release threshold
        # keeps the container alive through the tail).
        t = 0.0
        for __ in range(10):
            policy.on_invocation(f, t)
            t += 30.0
        policy.on_cold_start(c, t, pool)
        # Tail is 1 minute (bucket 0 upper edge), margin 1.15.
        assert policy.expired_containers(pool, t + 60.0) == []
        assert policy.expired_containers(pool, t + 1.15 * 60.0 + 1.0)

    def test_sparse_predictable_releases_then_prewarms(self):
        policy = HistogramPolicy(min_samples=2, release_threshold_s=60.0)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 0.0)
        pool.add(c)
        t = 0.0
        for __ in range(10):
            policy.on_invocation(f, t)
            t += 600.0  # 10-minute IATs: head = 10 min > release threshold
        policy.on_cold_start(c, t, pool)
        # Container released quickly...
        assert policy.expired_containers(pool, t + 61.0)
        # ...and a prewarm is scheduled around 0.85 * head.
        assert policy.due_prewarms(t + 0.85 * 600.0 - 5.0) == []
        due = policy.due_prewarms(t + 0.85 * 600.0 + 5.0)
        assert len(due) == 1
        assert due[0].function.name == "A"
        assert due[0].expiry_s > due[0].at_time_s

    def test_prewarm_cancelled_by_real_arrival(self):
        policy = HistogramPolicy(min_samples=2, release_threshold_s=60.0)
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 0.0)
        pool.add(c)
        t = 0.0
        for __ in range(10):
            policy.on_invocation(f, t)
            t += 600.0
        policy.on_cold_start(c, t, pool)
        # The next invocation arrives before the prewarm fires.
        policy.on_invocation(f, t + 120.0)
        policy.on_warm_start(c, t + 120.0, pool)
        # The original prewarm (for time t + 510) must not fire.
        due = policy.due_prewarms(t + 520.0)
        assert all(r.at_time_s > t + 520.0 for r in due) or due == []

    def test_prewarm_expiry_applied_via_on_prewarm(self):
        policy = HistogramPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 100.0)
        pool.add(c)
        from repro.core.policies.base import PrewarmRequest

        request = PrewarmRequest(f, at_time_s=100.0, expiry_s=400.0)
        policy.on_prewarm(c, request, pool)
        assert policy.expired_containers(pool, 399.0) == []
        assert policy.expired_containers(pool, 400.0)

    def test_eviction_cleans_expiry_state(self):
        policy = HistogramPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = Container(f, 0.0)
        pool.add(c)
        policy.on_invocation(f, 0.0)
        policy.on_cold_start(c, 0.0, pool)
        pool.evict(c)
        policy.on_evict(c, 1.0, pool, pressure=True)
        assert pool.expiry_deadline_of(c) is None


class TestHistogramPolicyPressure:
    def test_evicts_furthest_predicted_first(self):
        policy = HistogramPolicy(min_samples=2)
        pool = ContainerPool(200.0)
        soon = make_function("SOON", memory_mb=100.0)
        late = make_function("LATE", memory_mb=100.0)
        # SOON arrives every 2 minutes, LATE every 30 minutes.
        t = 0.0
        for i in range(10):
            policy.on_invocation(soon, i * 120.0)
            policy.on_invocation(late, i * 1800.0)
        cs = Container(soon, 1080.0)
        cs.last_used_s = 1080.0
        cl = Container(late, 1080.0)
        cl.last_used_s = 1080.0
        pool.add(cs)
        pool.add(cl)
        victims = policy.select_victims(pool, 100.0, 1100.0)
        assert victims == [cl]

    def test_reset_clears_everything(self):
        policy = HistogramPolicy()
        f = make_function("A")
        policy.on_invocation(f, 0.0)
        policy.on_invocation(f, 60.0)
        policy.reset()
        assert policy.frequency_of("A") == 0
        assert policy.histogram_of("A").in_window_count == 0

"""Differential suite: columnar engine vs the object-path oracle.

The columnar engine's contract is *byte-identical metrics*: for any
trace and policy, :class:`ColumnarReplayEngine` must produce exactly
the payload the per-invocation :class:`KeepAliveSimulator` produces —
same counters, same ``repr``-precision percentages, same
``per_function`` outcomes in the same insertion order. This suite
holds it to that across:

* randomized seeded workloads x the paper's policy spread (TTL, HIST,
  GD/GDSF, LRU), through the batched sequential path;
* the vectorized TTL kernel, including chunk-size invariance and the
  mid-stream fallbacks (burst gaps, capacity pressure) that force it
  back onto the sequential path;
* the exact-summation primitive (``np.add.accumulate`` + scalar
  carry) the kernel's float accumulation correctness rests on;
* a ``PYTHONHASHSEED`` subprocess pair — both engines, both seeds,
  one fingerprint.
"""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.bench import _metrics_payload, churn_trace, eviction_trace
from repro.checks.sanitize import set_sanitize
from repro.core.policies.base import create_policy
from repro.core.policies.ttl import TTLPolicy
from repro.sim.columnar import ColumnarReplayEngine
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.columnar import ColumnarTrace, FunctionTable
from repro.traces.model import TraceFunction
from repro.traces.streaming import StreamingChurnTrace
from repro.traces.synth import multitenant_trace, skewed_frequency_trace

REPO = pathlib.Path(__file__).resolve().parents[1]


def oracle_payload(trace, policy_name, memory_mb, **policy_kwargs):
    policy = create_policy(policy_name, **policy_kwargs)
    result = KeepAliveSimulator(trace, policy, memory_mb).run()
    return _metrics_payload(result), result.metrics.per_function


def engine_payload(trace, policy_name, memory_mb, **engine_kwargs):
    engine = ColumnarReplayEngine(policy_name, memory_mb, **engine_kwargs)
    result = engine.run(trace)
    return (
        _metrics_payload(result),
        result.metrics.per_function,
        engine.last_path,
    )


class TestRandomizedDifferential:
    """Seeded workloads x policies: the two paths must agree exactly."""

    @pytest.mark.parametrize("policy", ["TTL", "HIST", "GD", "LRU"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_churn_workloads(self, policy, seed):
        trace = churn_trace(
            num_functions=60, duration_s=4800.0, seed=seed
        )
        kwargs = {"ttl_s": 300.0} if policy == "TTL" else {}
        want, want_pf = oracle_payload(trace, policy, 96 * 128.0, **kwargs)
        got, got_pf, __ = engine_payload(
            ColumnarTrace.from_trace(trace), policy, 96 * 128.0, **kwargs
        )
        assert got == want
        assert got_pf == want_pf
        assert list(got_pf) == list(want_pf)

    @pytest.mark.parametrize("policy", ["GD", "HIST", "LRU"])
    def test_eviction_pressure(self, policy):
        trace = eviction_trace(num_functions=120, rounds=6)
        want, want_pf = oracle_payload(trace, policy, 24 * 128.0)
        got, got_pf, path = engine_payload(
            ColumnarTrace.from_trace(trace), policy, 24 * 128.0
        )
        assert path == "sequential"
        assert got == want
        assert got_pf == want_pf

    @pytest.mark.parametrize(
        "trace_factory",
        [skewed_frequency_trace, multitenant_trace],
        ids=["skewed", "multitenant"],
    )
    def test_synth_traces_under_gd(self, trace_factory):
        trace = trace_factory(seed=7)
        want, want_pf = oracle_payload(trace, "GD", 4096.0)
        got, got_pf, __ = engine_payload(
            ColumnarTrace.from_trace(trace), "GD", 4096.0
        )
        assert got == want
        assert got_pf == want_pf

    def test_engine_accepts_object_trace_directly(self):
        trace = churn_trace(num_functions=30, seed=4)
        want, __ = oracle_payload(trace, "TTL", 64 * 128.0, ttl_s=300.0)
        got, __, __ = engine_payload(trace, "TTL", 64 * 128.0, ttl_s=300.0)
        assert got == want

    def test_simulate_engine_flag(self):
        trace = churn_trace(num_functions=30, seed=4)
        obj = simulate(trace, "TTL", 64 * 128.0, ttl_s=300.0)
        col = simulate(
            trace, "TTL", 64 * 128.0, engine="columnar", ttl_s=300.0
        )
        assert _metrics_payload(obj) == _metrics_payload(col)
        with pytest.raises(ValueError, match="engine"):
            simulate(trace, "TTL", 64 * 128.0, engine="rowwise")


class TestVectorizedTTLKernel:
    """The closed-form path: taken when eligible, exact always."""

    @pytest.fixture(autouse=True)
    def _kernel_enabled(self):
        # Sanitized runs deliberately route everything through the
        # sequential path; pin sanitize off so these tests exercise
        # the kernel even inside the REPRO_SANITIZE=1 CI job.
        set_sanitize(False)
        yield
        set_sanitize(None)

    def test_kernel_matches_oracle_on_churn(self):
        trace = churn_trace(num_functions=80, seed=21)
        want, want_pf = oracle_payload(
            trace, "TTL", 2048 * 128.0, ttl_s=300.0
        )
        got, got_pf, path = engine_payload(
            ColumnarTrace.from_trace(trace),
            "TTL",
            2048 * 128.0,
            ttl_s=300.0,
        )
        assert path == "vectorized-ttl"
        assert got == want
        assert got_pf == want_pf
        assert list(got_pf) == list(want_pf)

    @pytest.mark.parametrize("chunk", [7, 64, 100_000])
    def test_kernel_is_chunk_size_invariant(self, chunk):
        trace = ColumnarTrace.from_trace(
            churn_trace(num_functions=40, seed=8)
        )
        baseline, __, path = engine_payload(
            trace, "TTL", 2048 * 128.0, ttl_s=300.0
        )
        assert path == "vectorized-ttl"
        got, __, path = engine_payload(
            trace,
            "TTL",
            2048 * 128.0,
            chunk_invocations=chunk,
            ttl_s=300.0,
        )
        assert path == "vectorized-ttl"
        assert got == baseline

    def test_kernel_runs_streaming_traces(self):
        stream = StreamingChurnTrace(
            num_functions=30, duration_s=4000.0, seed=13
        )
        want, __ = oracle_payload(
            stream.materialize().to_trace(), "TTL", 64 * 128.0, ttl_s=300.0
        )
        got, __, path = engine_payload(
            stream, "TTL", 64 * 128.0, ttl_s=300.0
        )
        assert path == "vectorized-ttl"
        assert got == want

    def test_ttl_subclass_takes_sequential_path(self):
        class TracingTTL(TTLPolicy):
            pass

        trace = ColumnarTrace.from_trace(churn_trace(30, seed=4))
        engine = ColumnarReplayEngine(
            TracingTTL(ttl_s=300.0), 64 * 128.0
        )
        result = engine.run(trace)
        assert engine.last_path == "sequential"
        want, __ = oracle_payload(
            trace.to_trace(), "TTL", 64 * 128.0, ttl_s=300.0
        )
        assert _metrics_payload(result) == want

    def test_burst_gaps_fall_back_and_agree(self):
        """Same-function arrivals inside the cold time violate the
        one-container precondition; the engine must fall back and
        still agree with the oracle."""
        table = FunctionTable(
            [TraceFunction("f0", 128.0, 0.2, 5.0)]
        )
        trace = ColumnarTrace(
            table,
            np.array([0.0, 1.0, 2.0, 100.0]),
            np.zeros(4, dtype=np.int32),
            name="bursty",
        )
        want, __ = oracle_payload(
            trace.to_trace(), "TTL", 1024.0, ttl_s=30.0
        )
        got, __, path = engine_payload(trace, "TTL", 1024.0, ttl_s=30.0)
        assert path == "sequential"
        assert got == want

    def test_capacity_pressure_falls_back_and_agrees(self):
        table = FunctionTable(
            [
                TraceFunction(f"g{i}", 512.0, 0.2, 1.0)
                for i in range(4)
            ]
        )
        trace = ColumnarTrace(
            table,
            np.array([0.0, 10.0, 20.0, 30.0]),
            np.arange(4, dtype=np.int32),
            name="tight",
        )
        want, __ = oracle_payload(
            trace.to_trace(), "TTL", 1024.0, ttl_s=300.0
        )
        got, __, path = engine_payload(trace, "TTL", 1024.0, ttl_s=300.0)
        assert path == "sequential"
        assert got == want

    def test_empty_trace(self):
        table = FunctionTable([TraceFunction("f", 128.0, 0.2, 1.2)])
        empty = ColumnarTrace(
            table, np.empty(0), np.empty(0, dtype=np.int32)
        )
        result = ColumnarReplayEngine("TTL", 1024.0, ttl_s=300.0).run(empty)
        counters = result.metrics.counters()
        assert counters["warm_starts"] == 0
        assert counters["cold_starts"] == 0
        assert counters["expirations"] == 0


class TestExactSummation:
    """The kernel's float accumulation must replay the oracle's
    sequential ``+=`` bit for bit; ``np.add.accumulate`` (with a
    scalar carry across chunks) is that replay."""

    def test_accumulate_matches_sequential_sum(self):
        rng = np.random.default_rng(99)
        values = np.concatenate(
            [rng.uniform(0.0, 1e-3, 5000), rng.uniform(0.0, 1e6, 5000)]
        )
        rng.shuffle(values)
        sequential = 0.0
        for v in values.tolist():
            sequential += v
        assert float(np.add.accumulate(values)[-1]) == sequential

    def test_chunked_carry_matches_sequential_sum(self):
        rng = np.random.default_rng(100)
        values = rng.uniform(0.0, 1e4, 10_000)
        sequential = 0.0
        for v in values.tolist():
            sequential += v
        carry = 0.0
        for start in range(0, values.size, 617):
            chunk = values[start : start + 617]
            buf = np.empty(chunk.size + 1)
            buf[0] = carry
            buf[1:] = chunk
            carry = float(np.add.accumulate(buf)[-1])
        assert carry == sequential


_SUBPROCESS_SCRIPT = """
import json
from repro.bench import _metrics_payload, churn_trace, fingerprint
from repro.core.policies.base import create_policy
from repro.sim.columnar import ColumnarReplayEngine
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.columnar import ColumnarTrace

trace = churn_trace(num_functions=50, seed=31)
oracle = KeepAliveSimulator(
    trace, create_policy("HIST"), 96 * 128.0
).run()
engine = ColumnarReplayEngine("HIST", 96 * 128.0)
columnar = engine.run(ColumnarTrace.from_trace(trace))
print(json.dumps({
    "oracle": fingerprint(_metrics_payload(oracle)),
    "columnar": fingerprint(_metrics_payload(columnar)),
}))
"""


def _fingerprints_with_hashseed(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_fingerprints_stable_across_hash_seeds():
    a = _fingerprints_with_hashseed("0")
    b = _fingerprints_with_hashseed("4242")
    assert a == b
    assert a["oracle"] == a["columnar"]

"""Tests for text reporting and the figure-series builders."""

import pytest

from repro.analysis.curves import figure3_data, figure5_data, figure6_data
from repro.analysis.reporting import (
    format_bar_chart,
    format_series_table,
    format_table,
)
from tests.conftest import make_trace


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "a" in lines[2]
        assert "2.50" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_float_rendering(self):
        text = format_table(["v"], [[0.00123], [123456.0], [12.3456]])
        assert "0.0012" in text
        assert "123456" in text
        assert "12.35" in text


class TestSeriesTable:
    def test_one_column_per_series(self):
        text = format_series_table(
            "mem", [1.0, 2.0], {"GD": [0.5, 0.2], "TTL": [1.5, 1.2]}
        )
        header = text.splitlines()[0]
        assert "mem" in header and "GD" in header and "TTL" in header
        assert len(text.splitlines()) == 4


class TestBarChart:
    def test_bars_scale(self):
        text = format_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        text = format_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])


class TestFigureBuilders:
    def test_figure3_prediction_vs_observation(self):
        trace = make_trace("ABCABCABCABC" * 4, gap_s=2.0)
        data = figure3_data(trace, cache_sizes_gb=[0.2, 0.5, 1.0])
        assert len(data.predicted) == len(data.observed) == 3
        assert all(0.0 <= v <= 1.0 for v in data.predicted)
        assert all(0.0 <= v <= 1.0 for v in data.observed)
        # Predictions are monotone in size.
        assert data.predicted == sorted(data.predicted)
        assert data.max_deviation() >= 0.0

    def test_figure5_series_shape(self):
        trace = make_trace("ABAB" * 10, gap_s=1.0)
        data = figure5_data(trace, [0.5, 1.0], policies=("GD", "TTL"))
        assert set(data) == {"GD", "TTL"}
        assert [m for m, __ in data["GD"]] == [0.5, 1.0]

    def test_figure6_series_shape(self):
        trace = make_trace("ABAB" * 10, gap_s=10.0)
        data = figure6_data(trace, [1.0], policies=("LRU",))
        # Plenty of memory, sequential arrivals: exactly the two
        # compulsory misses out of 40 invocations.
        assert data["LRU"][0][1] == pytest.approx(5.0)


class TestLinePlot:
    def test_basic_render(self):
        from repro.analysis.reporting import format_line_plot

        text = format_line_plot(
            [0.0, 10.0], {"GD": [1.0, 2.0], "TTL": [3.0, 4.0]},
            title="demo", x_label="x", y_label="y",
        )
        assert "demo" in text
        assert "G=GD" in text and "T=TTL" in text
        assert "G" in text and "T" in text

    def test_collision_marker(self):
        from repro.analysis.reporting import format_line_plot

        text = format_line_plot([0.0], {"A": [1.0], "B": [1.0]})
        assert "*" in text

    def test_length_mismatch(self):
        from repro.analysis.reporting import format_line_plot

        with pytest.raises(ValueError):
            format_line_plot([1.0, 2.0], {"A": [1.0]})

    def test_empty_x(self):
        from repro.analysis.reporting import format_line_plot

        with pytest.raises(ValueError):
            format_line_plot([], {})

    def test_constant_series(self):
        from repro.analysis.reporting import format_line_plot

        text = format_line_plot([1.0, 2.0], {"A": [5.0, 5.0]})
        assert "A" in text

    def test_marker_letters_distinct(self):
        from repro.analysis.reporting import format_line_plot

        text = format_line_plot(
            [0.0],
            {"LRU": [1.0], "LND": [2.0], "LFU": [3.0]},
        )
        # L, N, F assigned without collisions in the legend.
        assert "L=LRU" in text and "N=LND" in text and "F=LFU" in text

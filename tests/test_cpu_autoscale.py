"""Tests for the reactive/predictive CPU auto-scalers."""

import pytest

from repro.provisioning.cpu_autoscale import (
    PredictiveCpuScaler,
    ReactiveCpuScaler,
)


def reactive(**kwargs):
    defaults = dict(
        target_utilization=0.5,
        min_cores=1,
        max_cores=64,
        scale_down_hold_s=1000.0,
        ewma_alpha=1.0,  # no smoothing: deterministic tests
        initial_cores=2,
    )
    defaults.update(kwargs)
    return ReactiveCpuScaler(**defaults)


class TestReactive:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveCpuScaler(target_utilization=1.0)
        with pytest.raises(ValueError):
            ReactiveCpuScaler(min_cores=0)
        with pytest.raises(ValueError):
            ReactiveCpuScaler(min_cores=8, max_cores=4)
        with pytest.raises(ValueError):
            reactive().step(0.0, 1.0, 0.0)

    def test_scale_up_is_immediate(self):
        scaler = reactive()
        decision = scaler.step(0.0, arrival_rate=10.0, mean_service_time_s=1.0)
        # offered load 10 cores / 0.5 target -> 20 cores.
        assert decision.cores == 20
        assert decision.resized

    def test_scale_down_held_then_applied(self):
        scaler = reactive()
        scaler.step(0.0, 10.0, 1.0)  # up to 20
        d1 = scaler.step(100.0, 1.0, 1.0)  # wants 2, hold starts
        assert d1.cores == 20 and not d1.resized
        d2 = scaler.step(500.0, 1.0, 1.0)  # still inside the hold
        assert d2.cores == 20
        d3 = scaler.step(1200.0, 1.0, 1.0)  # hold elapsed
        assert d3.cores == 2 and d3.resized

    def test_demand_spike_resets_hold(self):
        scaler = reactive()
        scaler.step(0.0, 10.0, 1.0)  # 20 cores
        scaler.step(100.0, 1.0, 1.0)  # hold starts
        scaler.step(600.0, 12.0, 1.0)  # spike: back above, hold cancelled
        d = scaler.step(1300.0, 1.0, 1.0)  # new hold only started now
        assert d.cores > 2

    def test_bounds_respected(self):
        scaler = reactive(max_cores=8)
        assert scaler.step(0.0, 1000.0, 1.0).cores == 8
        scaler2 = reactive(min_cores=4)
        scaler2.step(0.0, 0.001, 1.0)
        assert scaler2.cores >= 4

    def test_mean_cores(self):
        scaler = reactive()
        scaler.step(0.0, 10.0, 1.0)  # 20
        scaler.step(100.0, 10.0, 1.0)  # 20
        assert scaler.mean_cores() == pytest.approx(20.0)


class TestPredictive:
    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveCpuScaler(season_s=0.0)
        with pytest.raises(ValueError):
            PredictiveCpuScaler(season_s=100.0, bucket_s=200.0)

    def test_seasonal_forecast_preprovisions(self):
        scaler = PredictiveCpuScaler(
            season_s=1000.0,
            bucket_s=100.0,
            target_utilization=0.5,
            ewma_alpha=1.0,
            scale_down_hold_s=0.0,
        )
        # First season: a burst in bucket 3.
        scaler.step(300.0, 40.0, 1.0)
        # Quiet period afterwards lets it scale down.
        scaler.step(600.0, 1.0, 1.0)
        scaler.step(700.0, 1.0, 1.0)
        low = scaler.cores
        # Next season, same phase as the burst but *before* the load
        # arrives: the forecast provisions for it anyway.
        decision = scaler.step(1300.0, 1.0, 1.0)
        assert decision.cores > low
        assert decision.offered_load_cores >= 40.0

    def test_falls_back_to_reactive_without_history(self):
        scaler = PredictiveCpuScaler(
            season_s=1000.0, bucket_s=100.0, target_utilization=0.5,
            ewma_alpha=1.0,
        )
        decision = scaler.step(0.0, 10.0, 1.0)
        assert decision.cores == 20

"""Tests for the event sinks: buffering, persistence, export."""

import json
import pickle

import pytest

from repro.obs.sinks import (
    JsonlSink,
    MultiSink,
    NullSink,
    PrometheusTextfileSink,
    RingBufferSink,
    read_jsonl_events,
    write_counters_textfile,
)
from repro.obs.tracer import NULL_TRACER, Tracer, active_tracer


def _event(event_type="invocation_arrived", time_s=1.0, **fields):
    event = {"event": event_type, "time_s": time_s, "function": "f"}
    event.update(fields)
    return event


class TestRingBufferSink:
    def test_stores_in_order(self):
        sink = RingBufferSink()
        for i in range(5):
            sink.emit(_event(time_s=float(i)))
        assert [e["time_s"] for e in sink] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(sink) == 5
        assert sink.total_emitted == 5
        assert sink.dropped == 0

    def test_capacity_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit(_event(time_s=float(i)))
        assert [e["time_s"] for e in sink] == [7.0, 8.0, 9.0]
        assert sink.total_emitted == 10
        assert sink.dropped == 7

    def test_snapshot_is_a_copy(self):
        sink = RingBufferSink()
        sink.emit(_event())
        snap = sink.snapshot()
        sink.emit(_event())
        assert len(snap) == 1
        assert len(sink) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(_event(time_s=0.5))
            sink.emit(_event("dropped", time_s=1.5, needed_mb=128.0))
        assert sink.events_written == 2
        events = list(read_jsonl_events(path))
        assert events[0]["time_s"] == 0.5
        assert events[1] == {
            "event": "dropped", "time_s": 1.5, "function": "f",
            "needed_mb": 128.0,
        }

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "lazy.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing emitted yet
        sink.emit(_event())
        sink.close()
        assert path.exists()

    def test_eager_open_creates_file_immediately(self, tmp_path):
        path = tmp_path / "sub" / "eager.jsonl"
        sink = JsonlSink(path, eager=True)
        sink.close()
        assert path.exists()
        assert list(read_jsonl_events(path)) == []

    def test_compact_single_line_json(self, tmp_path):
        path = tmp_path / "compact.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(_event())
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["event"] == "invocation_arrived"
        assert ": " not in line  # compact separators


class TestPrometheusTextfileSink:
    def _feed(self, sink):
        tracer = Tracer(sink)
        tracer.emit("warm_hit", 1.0, function="f", container_id=1,
                    duration_s=0.5)
        tracer.emit("cold_start", 2.0, function="f", container_id=2,
                    duration_s=2.0)
        tracer.emit("cold_start", 3.0, function="g", container_id=3,
                    duration_s=4.0)
        tracer.emit("container_spawned", 2.0, function="f",
                    container_id=2, memory_mb=128.0, pinned=False,
                    prewarmed=False)
        tracer.emit("evicted", 4.0, function="f", container_id=2,
                    policy="GD", reason="pressure", freed_mb=128.0,
                    priority=1.0, idle_s=1.0, age_s=2.0)
        tracer.emit("dropped", 5.0, function="g", needed_mb=256.0)
        tracer.emit("pool_pressure", 4.0, needed_mb=128.0, free_mb=0.0,
                    evictable_mb=128.0, used_mb=512.0, capacity_mb=512.0)

    def test_counters_and_histograms_rendered(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusTextfileSink(path)
        self._feed(sink)
        sink.flush()
        text = path.read_text()
        assert 'faascache_invocations_total{outcome="warm"} 1' in text
        assert 'faascache_invocations_total{outcome="cold"} 2' in text
        assert 'faascache_invocations_total{outcome="dropped"} 1' in text
        assert (
            'faascache_evictions_total{policy="GD",reason="pressure"} 1'
            in text
        )
        assert 'faascache_containers_spawned_total{kind="cold"} 1' in text
        assert "faascache_pool_pressure_total 1" in text
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'le="+Inf"' in text
        assert "faascache_eviction_freed_mb_count 1" in text

    def test_close_flushes(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusTextfileSink(path)
        self._feed(sink)
        sink.close()
        assert path.exists()

    def test_custom_namespace(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusTextfileSink(path, namespace="keepalive")
        self._feed(sink)
        sink.flush()
        text = path.read_text()
        assert "keepalive_invocations_total" in text
        assert "faascache_" not in text


class TestMultiSink:
    def test_fans_out(self, tmp_path):
        ring = RingBufferSink()
        path = tmp_path / "multi.jsonl"
        jsonl = JsonlSink(path)
        multi = MultiSink(ring, jsonl)
        multi.emit(_event())
        multi.close()
        assert len(ring) == 1
        assert len(list(read_jsonl_events(path))) == 1

    def test_requires_a_sink(self):
        with pytest.raises(ValueError):
            MultiSink()


class TestProcessLocality:
    """Sinks hold process-local state: pickling must fail loudly, not
    silently duplicate file handles into worker processes."""

    @pytest.mark.parametrize(
        "make",
        [
            RingBufferSink,
            NullSink,
            lambda: MultiSink(RingBufferSink()),
        ],
    )
    def test_sinks_refuse_to_pickle(self, make):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(make())

    def test_jsonl_sink_refuses_to_pickle(self, tmp_path):
        with pytest.raises(TypeError, match="trace_dir"):
            pickle.dumps(JsonlSink(tmp_path / "x.jsonl"))

    def test_tracer_with_sink_refuses_to_pickle(self):
        with pytest.raises(TypeError):
            pickle.dumps(Tracer(RingBufferSink()))


class TestNullPath:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.emit(_event())
        sink.flush()
        sink.close()

    def test_null_tracer_is_inactive(self):
        assert active_tracer(None) is None
        assert active_tracer(NULL_TRACER) is None
        tracer = Tracer(RingBufferSink())
        assert active_tracer(tracer) is tracer

    def test_null_tracer_bind_stays_null(self):
        bound = NULL_TRACER.bind(server=3)
        assert active_tracer(bound) is None
        bound.emit("invocation_arrived", 0.0, function="f")  # no-op


class TestWriteCountersTextfile:
    def test_rows_with_labels(self, tmp_path):
        path = tmp_path / "sweep.prom"
        write_counters_textfile(
            path,
            [
                ({"policy": "GD", "memory_gb": "1"},
                 {"warm_starts": 10, "cold_starts": 2}),
                ({"policy": "TTL", "memory_gb": "1"},
                 {"warm_starts": 8, "cold_starts": 4}),
            ],
        )
        text = path.read_text()
        assert (
            'faascache_warm_starts_total{memory_gb="1",policy="GD"} 10'
            in text or
            'faascache_warm_starts_total{policy="GD",memory_gb="1"} 10'
            in text
        )
        assert text.count("# TYPE faascache_warm_starts_total counter") == 1

"""Unit tests for TTL, LRU, LFU (FREQ), and SIZE policies."""

import pytest

from repro.core.container import Container
from repro.core.policies.base import available_policies, create_policy
from repro.core.policies.lfu import LFUPolicy
from repro.core.policies.lru import LRUPolicy
from repro.core.policies.size import SizePolicy
from repro.core.policies.ttl import OPENWHISK_DEFAULT_TTL_S, TTLPolicy
from repro.core.pool import ContainerPool
from tests.conftest import make_function


def idle_container(pool, function, last_used_s):
    c = Container(function, created_at_s=last_used_s)
    c.last_used_s = last_used_s
    pool.add(c)
    return c


class TestRegistry:
    def test_all_paper_policies_registered(self):
        names = available_policies()
        for expected in ("GD", "TTL", "LRU", "HIST", "SIZE", "LND", "FREQ"):
            assert expected in names

    def test_create_by_lowercase_name(self):
        assert create_policy("lru").name == "LRU"

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            create_policy("NOPE")

    def test_policy_kwargs_forwarded(self):
        policy = create_policy("TTL", ttl_s=120.0)
        assert policy.ttl_s == 120.0


class TestTTL:
    def test_default_is_openwhisk_ten_minutes(self):
        assert TTLPolicy().ttl_s == OPENWHISK_DEFAULT_TTL_S == 600.0

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            TTLPolicy(ttl_s=0.0)

    def test_expires_after_ttl(self):
        policy = TTLPolicy(ttl_s=100.0)
        pool = ContainerPool(1000.0)
        c = idle_container(pool, make_function("A"), last_used_s=0.0)
        assert policy.expired_containers(pool, 99.0) == []
        expired = policy.expired_containers(pool, 100.0)
        assert [pair[0] for pair in expired] == [c]
        assert expired[0][1] == pytest.approx(100.0)

    def test_does_not_expire_running(self):
        policy = TTLPolicy(ttl_s=100.0)
        pool = ContainerPool(1000.0)
        c = idle_container(pool, make_function("A"), last_used_s=0.0)
        c.start_invocation(0.0, 500.0)
        assert policy.expired_containers(pool, 200.0) == []

    def test_expiry_order_is_oldest_first(self):
        policy = TTLPolicy(ttl_s=10.0)
        pool = ContainerPool(1000.0)
        newer = idle_container(pool, make_function("A", memory_mb=10), 5.0)
        older = idle_container(pool, make_function("B", memory_mb=10), 0.0)
        expired = [c for c, __ in policy.expired_containers(pool, 100.0)]
        assert expired == [older, newer]

    def test_pressure_eviction_is_lru(self):
        policy = TTLPolicy()
        pool = ContainerPool(200.0)
        old = idle_container(pool, make_function("A", memory_mb=100.0), 0.0)
        new = idle_container(pool, make_function("B", memory_mb=100.0), 50.0)
        victims = policy.select_victims(pool, 100.0, 60.0)
        assert victims == [old]


class TestLRU:
    def test_priority_is_last_use(self):
        policy = LRUPolicy()
        pool = ContainerPool(1000.0)
        c = idle_container(pool, make_function("A"), last_used_s=42.0)
        assert policy.priority(c, 100.0) == 42.0

    def test_never_expires(self):
        policy = LRUPolicy()
        pool = ContainerPool(1000.0)
        idle_container(pool, make_function("A"), 0.0)
        assert policy.expired_containers(pool, 1e9) == []

    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        pool = ContainerPool(300.0)
        c1 = idle_container(pool, make_function("A", memory_mb=100.0), 10.0)
        c2 = idle_container(pool, make_function("B", memory_mb=100.0), 5.0)
        c3 = idle_container(pool, make_function("C", memory_mb=100.0), 20.0)
        victims = policy.select_victims(pool, 200.0, 30.0)
        assert victims == [c2, c1]


class TestLFU:
    def test_priority_is_frequency(self):
        policy = LFUPolicy()
        pool = ContainerPool(1000.0)
        f = make_function("A")
        c = idle_container(pool, f, 0.0)
        policy.on_invocation(f, 0.0)
        policy.on_invocation(f, 1.0)
        assert policy.priority(c, 2.0) == 2.0

    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        pool = ContainerPool(200.0)
        hot = make_function("H", memory_mb=100.0)
        cold = make_function("C", memory_mb=100.0)
        ch = idle_container(pool, hot, 0.0)
        cc = idle_container(pool, cold, 5.0)  # more recent, but less frequent
        for t in range(5):
            policy.on_invocation(hot, float(t))
        policy.on_invocation(cold, 5.0)
        victims = policy.select_victims(pool, 100.0, 6.0)
        assert victims == [cc]

    def test_tie_broken_by_lru(self):
        policy = LFUPolicy()
        pool = ContainerPool(200.0)
        a = make_function("A", memory_mb=100.0)
        b = make_function("B", memory_mb=100.0)
        ca = idle_container(pool, a, 0.0)
        cb = idle_container(pool, b, 10.0)
        policy.on_invocation(a, 0.0)
        policy.on_invocation(b, 10.0)
        victims = policy.select_victims(pool, 100.0, 20.0)
        assert victims == [ca]


class TestSize:
    def test_priority_is_inverse_size(self):
        policy = SizePolicy()
        pool = ContainerPool(1000.0)
        c = idle_container(pool, make_function("A", memory_mb=250.0), 0.0)
        assert policy.priority(c, 0.0) == pytest.approx(1.0 / 250.0)

    def test_evicts_largest_first(self):
        policy = SizePolicy()
        pool = ContainerPool(700.0)
        small = idle_container(pool, make_function("S", memory_mb=100.0), 10.0)
        big = idle_container(pool, make_function("B", memory_mb=500.0), 20.0)
        victims = policy.select_victims(pool, 200.0, 30.0)
        assert victims == [big]

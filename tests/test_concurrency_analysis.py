"""Tests for the concurrency-analysis (caching-correction) toolkit."""

import pytest

from repro.analysis.concurrency import (
    concurrency_headroom_mb,
    concurrency_profile,
    max_concurrency,
    working_set_mb,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_function, make_trace


def overlap_trace():
    """A: three overlapping invocations; B: strictly sequential."""
    a = TraceFunction("A", 100.0, warm_time_s=10.0, cold_time_s=12.0)
    b = TraceFunction("B", 200.0, warm_time_s=1.0, cold_time_s=2.0)
    invocations = [
        Invocation(0.0, "A"),
        Invocation(2.0, "A"),
        Invocation(4.0, "A"),
        Invocation(0.0, "B"),
        Invocation(50.0, "B"),
    ]
    return Trace([a, b], invocations)


class TestConcurrencyProfile:
    def test_overlap_counted(self):
        profile = concurrency_profile(overlap_trace())
        assert profile["A"] == 3
        assert profile["B"] == 1

    def test_back_to_back_is_not_concurrency(self):
        f = TraceFunction("A", 100.0, warm_time_s=5.0, cold_time_s=6.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(5.0, "A")])
        assert concurrency_profile(trace)["A"] == 1

    def test_cold_time_bound_is_larger(self):
        f = TraceFunction("A", 100.0, warm_time_s=1.0, cold_time_s=10.0)
        trace = Trace([f], [Invocation(0.0, "A"), Invocation(2.0, "A")])
        assert concurrency_profile(trace)["A"] == 1
        assert concurrency_profile(trace, use_cold_time=True)["A"] == 2

    def test_never_invoked_function_is_zero(self):
        f = make_function("A")
        g = make_function("B")
        trace = Trace([f, g], [Invocation(0.0, "A")])
        assert concurrency_profile(trace)["B"] == 0

    def test_global_max_concurrency(self):
        # Three A invocations overlap in [4, 10); B finished at t=1.
        assert max_concurrency(overlap_trace()) == 3

    def test_empty_trace(self):
        trace = Trace([make_function("A")], [])
        assert max_concurrency(trace) == 0
        assert concurrency_headroom_mb(trace) == 0.0


class TestHeadroom:
    def test_headroom_formula(self):
        # A peaks at 3 -> 2 extra containers x 100 MB.
        assert concurrency_headroom_mb(overlap_trace()) == pytest.approx(200.0)

    def test_sequential_trace_needs_no_headroom(self):
        trace = make_trace("ABCABC", gap_s=100.0)
        assert concurrency_headroom_mb(trace) == 0.0

    def test_working_set_counts_invoked_functions_once(self):
        trace = overlap_trace()
        assert working_set_mb(trace) == pytest.approx(300.0)

    def test_headroom_eliminates_concurrency_cold_starts(self):
        """Provisioning working set + headroom lets GD avoid every
        non-compulsory cold start on a concurrency-heavy trace."""
        from repro.sim.scheduler import simulate

        f = TraceFunction("A", 100.0, warm_time_s=10.0, cold_time_s=11.0)
        g = TraceFunction("B", 300.0, warm_time_s=10.0, cold_time_s=11.0)
        invocations = []
        for round_ in range(10):
            base = round_ * 40.0
            invocations += [
                Invocation(base, "A"),
                Invocation(base + 1.0, "A"),
                Invocation(base + 2.0, "B"),
                Invocation(base + 3.0, "B"),
            ]
        trace = Trace([f, g], invocations)
        size = working_set_mb(trace) + concurrency_headroom_mb(trace)
        metrics = simulate(trace, "GD", size).metrics
        # Compulsory misses: one per *container* needed, i.e. the
        # summed concurrency profile.
        profile = concurrency_profile(trace)
        assert metrics.cold_starts == sum(profile.values())
        assert metrics.dropped == 0
        # One MB less and the concurrency demand cannot be met warm.
        tight = simulate(trace, "GD", size - 100.0).metrics
        assert tight.cold_starts > metrics.cold_starts or tight.dropped > 0

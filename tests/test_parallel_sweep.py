"""Tests for the parallel sweep runner."""

import pytest

from repro.sim.parallel import run_sweep_parallel, simulate_cell
from repro.sim.sweep import run_sweep
from tests.conftest import make_trace


@pytest.fixture
def trace():
    return make_trace("ABCDABCDBCAD" * 20, gap_s=2.0)


class TestParallelSweep:
    def test_matches_sequential(self, trace):
        grid = [0.5, 1.0]
        policies = ("GD", "LRU", "TTL")
        sequential = run_sweep(trace, grid, policies=policies)
        parallel = run_sweep_parallel(
            trace, grid, policies=policies, max_workers=2
        )
        seq = {(p.policy, p.memory_gb): p for p in sequential.points}
        par = {(p.policy, p.memory_gb): p for p in parallel.points}
        assert set(seq) == set(par)
        for key in seq:
            assert seq[key] == par[key]

    def test_inline_fallback(self, trace):
        result = run_sweep_parallel(
            trace, [1.0], policies=("GD",), max_workers=1
        )
        assert len(result.points) == 1
        assert result.points[0].policy == "GD"

    def test_simulate_cell_standalone(self, trace):
        point = simulate_cell(trace, "LRU", 1.0)
        assert point.policy == "LRU"
        assert point.memory_gb == 1.0
        assert 0.0 <= point.cold_start_pct <= 100.0

    def test_grid_complete(self, trace):
        result = run_sweep_parallel(
            trace, [0.5, 1.0, 2.0], policies=("GD", "FREQ"), max_workers=2
        )
        assert len(result.points) == 6
        assert result.memory_sizes() == [0.5, 1.0, 2.0]

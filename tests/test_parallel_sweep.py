"""Tests for the parallel sweep runner."""

import pytest

from repro.sim.parallel import run_sweep_parallel, simulate_cell
from repro.sim.sweep import FailedCell, cell_trace_path, run_sweep
from tests.conftest import make_trace


@pytest.fixture
def trace():
    return make_trace("ABCDABCDBCAD" * 20, gap_s=2.0)


class TestParallelSweep:
    def test_matches_sequential(self, trace):
        grid = [0.5, 1.0]
        policies = ("GD", "LRU", "TTL")
        sequential = run_sweep(trace, grid, policies=policies)
        parallel = run_sweep_parallel(
            trace, grid, policies=policies, max_workers=2
        )
        seq = {(p.policy, p.memory_gb): p for p in sequential.points}
        par = {(p.policy, p.memory_gb): p for p in parallel.points}
        assert set(seq) == set(par)
        for key in seq:
            assert seq[key] == par[key]

    def test_matches_sequential_larger_grid(self, trace):
        """Bit-identity including point *order*, across a grid wider
        than the worker count so completion order scrambles."""
        grid = [0.25, 0.5, 1.0, 2.0]
        policies = ("GD", "LRU", "TTL", "FREQ")
        sequential = run_sweep(trace, grid, policies=policies)
        parallel = run_sweep_parallel(
            trace, grid, policies=policies, max_workers=3
        )
        assert parallel.points == sequential.points
        assert parallel.failed_cells == []

    def test_inline_fallback(self, trace):
        result = run_sweep_parallel(
            trace, [1.0], policies=("GD",), max_workers=1
        )
        assert len(result.points) == 1
        assert result.points[0].policy == "GD"

    def test_simulate_cell_standalone(self, trace):
        point = simulate_cell(trace, "LRU", 1.0)
        assert point.policy == "LRU"
        assert point.memory_gb == 1.0
        assert 0.0 <= point.cold_start_pct <= 100.0

    def test_grid_complete(self, trace):
        result = run_sweep_parallel(
            trace, [0.5, 1.0, 2.0], policies=("GD", "FREQ"), max_workers=2
        )
        assert len(result.points) == 6
        assert result.memory_sizes() == [0.5, 1.0, 2.0]

    def test_throughput_fields_populated(self, trace):
        result = run_sweep_parallel(
            trace, [1.0], policies=("GD",), max_workers=2
        )
        point = result.points[0]
        assert point.wall_time_s > 0.0
        assert point.invocations_per_s > 0.0


class TestFaultTolerance:
    """A failing cell must cost exactly that cell, nothing else."""

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_bad_policy_lands_in_failed_cells(self, trace, max_workers):
        result = run_sweep_parallel(
            trace,
            [0.5, 1.0],
            policies=("GD", "NOPE"),
            max_workers=max_workers,
        )
        # The good policy's column is intact...
        good = [p for p in result.points if p.policy == "GD"]
        assert [p.memory_gb for p in good] == [0.5, 1.0]
        # ...and the bad one is reported, not raised.
        assert result.failed_cells == [
            FailedCell("NOPE", 0.5, result.failed_cells[0].error),
            FailedCell("NOPE", 1.0, result.failed_cells[1].error),
        ]
        assert "NOPE" in result.failed_cells[0].error

    def test_partial_points_match_sequential(self, trace):
        """Surviving points of a partly-failed grid are still
        bit-identical to a sequential run of the surviving cells."""
        parallel = run_sweep_parallel(
            trace, [0.5, 1.0], policies=("GD", "NOPE", "LRU"), max_workers=2
        )
        sequential = run_sweep(trace, [0.5, 1.0], policies=("GD", "LRU"))
        assert parallel.points == sequential.points

    def test_progress_counts_failures_too(self, trace):
        calls = []
        result = run_sweep_parallel(
            trace,
            [0.5],
            policies=("GD", "NOPE", "LRU"),
            max_workers=2,
            progress=lambda done, total, policy, gb: calls.append(
                (done, total, policy, gb)
            ),
        )
        assert len(calls) == 3
        assert [c[0] for c in sorted(calls)] == [1, 2, 3]
        assert all(c[1] == 3 for c in calls)
        assert {c[2] for c in calls} == {"GD", "NOPE", "LRU"}
        assert len(result.points) == 2
        assert len(result.failed_cells) == 1

    def test_negative_retries_rejected(self, trace):
        with pytest.raises(ValueError, match="retries"):
            run_sweep_parallel(trace, [1.0], policies=("GD",), retries=-1)

    def test_zero_retries_still_reports_failures(self, trace):
        result = run_sweep_parallel(
            trace, [1.0], policies=("NOPE",), max_workers=2, retries=0
        )
        assert result.points == []
        assert len(result.failed_cells) == 1


class TestSweepTracing:
    """Per-cell event traces and counter snapshots, both engines."""

    def test_counters_populated_and_engine_equal(self, trace):
        grid = [0.5, 1.0]
        policies = ("GD", "TTL")
        sequential = run_sweep(trace, grid, policies=policies)
        parallel = run_sweep_parallel(
            trace, grid, policies=policies, max_workers=2
        )
        for point in sequential.points:
            assert point.counters  # snapshot always filled
            assert point.counters["warm_starts"] >= 0
        seq = {(p.policy, p.memory_gb): p.counters
               for p in sequential.points}
        par = {(p.policy, p.memory_gb): p.counters
               for p in parallel.points}
        assert seq == par
        totals = sequential.total_counters()
        assert totals["warm_starts"] == sum(
            p.counters["warm_starts"] for p in sequential.points
        )

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_trace_dir_writes_per_cell_files(
        self, trace, tmp_path, max_workers
    ):
        grid = [0.5, 1.0]
        policies = ("GD", "LRU")
        result = run_sweep_parallel(
            trace, grid, policies=policies,
            max_workers=max_workers, trace_dir=str(tmp_path),
        )
        assert result.failed_cells == []
        from repro.obs.report import load_report

        for point in result.points:
            path = cell_trace_path(tmp_path, point.policy, point.memory_gb)
            assert path.exists()
            # Counters rebuilt from the cell's event file equal the
            # cell's snapshot: per-worker sinks lost nothing.
            assert load_report(path).counters() == dict(point.counters)

    def test_sequential_trace_dir_matches_parallel_layout(
        self, trace, tmp_path
    ):
        seq_dir = tmp_path / "seq"
        par_dir = tmp_path / "par"
        run_sweep(trace, [0.5], policies=("GD",), trace_dir=str(seq_dir))
        run_sweep_parallel(
            trace, [0.5], policies=("GD",),
            max_workers=2, trace_dir=str(par_dir),
        )
        assert [p.name for p in sorted(seq_dir.iterdir())] == [
            p.name for p in sorted(par_dir.iterdir())
        ]

    def test_tracer_object_rejected_with_multiprocess_workers(self, trace):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        tracer = Tracer(RingBufferSink())
        with pytest.raises(ValueError, match="process-local"):
            run_sweep_parallel(
                trace, [0.5], policies=("GD",), tracer=tracer
            )
        with pytest.raises(ValueError, match="process-local"):
            run_sweep_parallel(
                trace, [0.5], policies=("GD",),
                max_workers=4, tracer=tracer,
            )

    def test_tracer_object_allowed_inline(self, trace):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        sink = RingBufferSink()
        result = run_sweep_parallel(
            trace, [0.5], policies=("GD",),
            max_workers=1, tracer=Tracer(sink),
        )
        assert len(result.points) == 1
        assert sink.total_emitted > 0
        # Cell coordinates are bound onto every event.
        event = next(iter(sink))
        assert event["policy"] == "GD"
        assert event["memory_gb"] == 0.5

    def test_tracer_and_trace_dir_mutually_exclusive(self, trace, tmp_path):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        with pytest.raises(ValueError, match="not both"):
            run_sweep_parallel(
                trace, [0.5], policies=("GD",), max_workers=1,
                tracer=Tracer(RingBufferSink()),
                trace_dir=str(tmp_path),
            )

"""Docstring examples and end-to-end determinism.

The doctests double as API documentation; running them here keeps the
examples in module docstrings honest. The determinism tests pin the
property every EXPERIMENTS.md number relies on: identical seeds yield
identical results across the whole pipeline.
"""

import doctest

import pytest

import repro.analysis.stats
import repro.core.clock
import repro.core.policies.base
import repro.core.sizing
import repro.cluster.loadbalancer
import repro.provisioning.analytical
import repro.provisioning.hit_ratio
import repro.provisioning.reuse_distance
import repro.provisioning.shards
import repro.traces.functionbench
import repro.traces.preprocess

DOCTESTED_MODULES = [
    repro.analysis.stats,
    repro.core.clock,
    repro.core.policies.base,
    repro.core.sizing,
    repro.cluster.loadbalancer,
    repro.provisioning.analytical,
    repro.provisioning.hit_ratio,
    repro.provisioning.reuse_distance,
    repro.provisioning.shards,
    repro.traces.functionbench,
    repro.traces.preprocess,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"


def test_simulate_doctest():
    # repro.sim.scheduler's doctest imports a synth trace; run it too.
    import repro.sim.scheduler

    results = doctest.testmod(repro.sim.scheduler, verbose=False)
    assert results.failed == 0


class TestEndToEndDeterminism:
    def test_full_pipeline_is_deterministic(self):
        from repro.sim.scheduler import simulate
        from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
        from repro.traces.sampling import make_paper_traces

        def run_once():
            dataset = generate_azure_dataset(
                AzureGeneratorConfig(num_functions=200, max_daily_invocations=800),
                seed=99,
            )
            traces = make_paper_traces(
                dataset, sizes={"rare": 30, "representative": 40, "random": 20},
                seed=99,
            )
            return {
                name: simulate(trace, "GD", 4096.0).metrics.summary()
                for name, trace in traces.items()
            }

        assert run_once() == run_once()

    def test_invoker_is_deterministic(self):
        from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
        from repro.traces.synth import multitenant_trace

        def run_once():
            trace = multitenant_trace(duration_s=600.0, seed=4)
            result = SimulatedInvoker(
                InvokerConfig(memory_mb=4096.0, cpu_cores=8), policy="GD"
            ).run(trace)
            return (
                result.warm_starts,
                result.cold_starts,
                result.dropped,
                round(result.mean_latency_s(), 9),
            )

        assert run_once() == run_once()

    def test_percentile_latency(self):
        from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
        from repro.traces.synth import figure8_trace

        trace = figure8_trace(duration_s=120.0)
        result = SimulatedInvoker(
            InvokerConfig(memory_mb=4096.0, cpu_cores=8), policy="GD"
        ).run(trace)
        p50 = result.percentile_latency_s(50.0)
        p99 = result.percentile_latency_s(99.0)
        assert 0.0 < p50 <= p99
        assert result.percentile_latency_s(99.0, "floating-point") > 0.0

"""Tests for the colocated-application memory-pressure model."""

import pytest

from repro.provisioning.colocation import (
    ColocatedDemand,
    ColocationSimulation,
    tradeoff_curve,
)
from repro.traces.synth import cyclic_trace
from tests.conftest import make_trace


class TestColocatedDemand:
    def test_piecewise_lookup(self):
        demand = ColocatedDemand([(0.0, 100.0), (50.0, 400.0), (90.0, 200.0)])
        assert demand.at(0.0) == 100.0
        assert demand.at(49.9) == 100.0
        assert demand.at(50.0) == 400.0
        assert demand.at(1000.0) == 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ColocatedDemand([])
        with pytest.raises(ValueError):
            ColocatedDemand([(10.0, 100.0)])  # undefined before t=10
        with pytest.raises(ValueError):
            ColocatedDemand([(0.0, 100.0), (0.0, 200.0)])  # duplicate
        with pytest.raises(ValueError):
            ColocatedDemand([(0.0, -5.0)])

    def test_peak(self):
        demand = ColocatedDemand([(0.0, 100.0), (10.0, 700.0)])
        assert demand.peak_mb == 700.0


class TestColocationSimulation:
    def make_sim(self, demand_steps, server_mb=4096.0):
        trace = cyclic_trace(num_functions=10, cycle_gap_s=2.0, num_cycles=100)
        return ColocationSimulation(
            trace,
            ColocatedDemand(demand_steps),
            server_memory_mb=server_mb,
            policy="GD",
        )

    def test_rejects_infeasible_demand(self):
        with pytest.raises(ValueError):
            self.make_sim([(0.0, 4096.0)])

    def test_constant_demand_matches_plain_simulation(self):
        from repro.sim.scheduler import simulate

        trace = cyclic_trace(num_functions=10, cycle_gap_s=2.0, num_cycles=100)
        sim = ColocationSimulation(
            trace,
            ColocatedDemand([(0.0, 1024.0)]),
            server_memory_mb=4096.0,
        )
        result = sim.run()
        plain = simulate(trace, "GD", 3072.0).metrics
        assert result.metrics.cold_starts == plain.cold_starts
        assert result.deflations == []

    def test_demand_spike_triggers_deflation(self):
        sim = self.make_sim([(0.0, 512.0), (500.0, 2560.0)])
        result = sim.run()
        assert result.deflations
        assert sim.simulator.pool.capacity_mb == pytest.approx(
            4096.0 - 2560.0
        )
        assert result.total_deflation_latency_s > 0.0

    def test_demand_release_reinflates(self):
        sim = self.make_sim(
            [(0.0, 512.0), (400.0, 2560.0), (1200.0, 512.0)]
        )
        result = sim.run()
        assert sim.simulator.pool.capacity_mb == pytest.approx(
            4096.0 - 512.0
        )
        times = [t for t, __ in result.capacity_timeline]
        assert times == sorted(times)

    def test_more_colocation_means_more_cold_starts(self):
        light = self.make_sim([(0.0, 512.0)]).run()
        heavy = self.make_sim([(0.0, 3072.0)]).run()
        assert heavy.metrics.cold_starts >= light.metrics.cold_starts


class TestTradeoffCurve:
    def test_monotone_frontier(self):
        trace = make_trace("ABCDEFGH" * 30, gap_s=2.0)
        rows = tradeoff_curve(
            trace,
            server_memory_mb=4096.0,
            colocated_levels_mb=[0.0, 1024.0, 2048.0, 3072.0],
        )
        cold_ratios = [cold for __, cold, __ in rows]
        predictions = [miss for __, __, miss in rows]
        assert cold_ratios == sorted(cold_ratios)
        assert predictions == sorted(predictions)
        # Prediction tracks measurement.
        for __, cold, predicted in rows:
            assert abs(cold - predicted) < 0.25

    def test_rejects_oversubscription(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            tradeoff_curve(trace, 1000.0, [1000.0])

"""Pinned (provisioned-concurrency) containers across every policy.

Regression suite for the crash where a doorkeeper's admission gate
tried to release a *pinned* container after its invocation finished:
``should_retain`` returned False and the scheduler called
``pool.evict`` on reserved capacity, which rightly raises. Pinned
containers are retained by definition — the admission gate, victim
selection, and time-based expiry must all skip them.
"""

import pytest

from repro.core.container import Container
from repro.core.policies import (
    EXTENDED_POLICIES,
    PAPER_POLICIES,
    create_policy,
)
from repro.core.pool import ContainerPool
from repro.sim.scheduler import KeepAliveSimulator, simulate
from tests.conftest import make_function, make_trace

ALL_SIMPLE = list(PAPER_POLICIES) + list(EXTENDED_POLICIES)
ALL_NAMES = ALL_SIMPLE + ["ORACLE", "ORACLE-CS", "DOORKEEPER"]


def build_policy(name, trace):
    if name.startswith("ORACLE"):
        return create_policy(name, trace=trace)
    if name == "DOORKEEPER":
        return create_policy(name, inner="GD")
    return create_policy(name)


@pytest.fixture
def pressure_trace():
    # Enough distinct functions and repetitions that a small pool
    # exercises victim selection, admission, and (for TTL/HIST) expiry.
    return make_trace("ABCDBCADACBDDBCA" * 6, gap_s=5.0)


class TestDoorkeeperRegression:
    def test_reserved_concurrency_completes(self, pressure_trace):
        """The original crash: DOORKEEPER rejects function A's retention
        while A has a pinned container — the gate used to evict it."""
        policy = create_policy("DOORKEEPER", inner="GD", admission_threshold=3)
        sim = KeepAliveSimulator(
            pressure_trace,
            policy,
            memory_mb=1024.0,
            reserved_concurrency={"A": 1},
        )
        result = sim.run()  # must not raise "container ... is pinned"
        assert result.metrics.served > 0

    def test_unproven_pinned_function_stays_resident(self):
        """Even a function the doorkeeper would never admit keeps its
        pinned container: reservation outranks admission."""
        trace = make_trace("ABBBBBBB", gap_s=5.0)
        policy = create_policy(
            "DOORKEEPER", inner="GD", admission_threshold=100
        )
        sim = KeepAliveSimulator(
            trace, policy, memory_mb=1024.0, reserved_concurrency={"A": 1}
        )
        sim.run()
        survivors = [c for c in sim.pool.all_containers() if c.pinned]
        assert len(survivors) == 1
        assert survivors[0].function.name == "A"

    def test_unpinned_rejections_still_work(self, pressure_trace):
        policy = create_policy("DOORKEEPER", inner="GD", admission_threshold=3)
        sim = KeepAliveSimulator(
            pressure_trace,
            policy,
            memory_mb=2048.0,
            reserved_concurrency={"A": 1},
        )
        sim.run()
        # Non-reserved functions below the threshold were still bounced.
        assert policy.rejections > 0


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPinnedAcrossPolicies:
    def test_run_completes_and_pinned_survive(self, name, pressure_trace):
        policy = build_policy(name, pressure_trace)
        sim = KeepAliveSimulator(
            pressure_trace,
            policy,
            # Tight: B+C+D alone overflow it, so victim selection runs
            # constantly around the 256 MB pinned reservation.
            memory_mb=700.0,
            reserved_concurrency={"A": 1},
        )
        result = sim.run()
        assert result.metrics.served + result.metrics.dropped == len(
            pressure_trace
        )
        pinned = [c for c in sim.pool.all_containers() if c.pinned]
        assert len(pinned) == 1
        assert pinned[0].function.name == "A"

    def test_pinned_serves_warm_starts(self, name):
        trace = make_trace("AAAA", gap_s=10.0)
        policy = build_policy(name, trace)
        sim = KeepAliveSimulator(
            trace, policy, memory_mb=1024.0, reserved_concurrency={"A": 1}
        )
        result = sim.run()
        # The reservation exists from t=0, so even the first call hits.
        assert result.metrics.cold_starts == 0
        assert result.metrics.warm_starts == len(trace)

    def test_select_victims_never_returns_pinned(self, name, pressure_trace):
        policy = build_policy(name, pressure_trace)
        pool = ContainerPool(400.0)
        f_pinned = make_function("P", memory_mb=100.0)
        pinned = Container(f_pinned, 0.0)
        pinned.pinned = True
        pool.add(pinned)
        for i, fname in enumerate("ABC"):
            f = make_function(fname, memory_mb=100.0)
            policy.on_invocation(f, float(i))
            c = Container(f, float(i))
            pool.add(c)
            policy.on_cold_start(c, float(i), pool)
        # Fully reclaimable memory is 300 MB; asking for more must fail
        # rather than touch the reservation.
        assert policy.select_victims(pool, 350.0, 10.0) is None
        victims = policy.select_victims(pool, 250.0, 10.0)
        assert victims is not None
        assert pinned not in victims


class TestPinnedMechanics:
    def test_expiry_skips_pinned(self):
        """TTL expiry goes through idle_containers(), which must not
        offer the reservation."""
        trace = make_trace("AB" + "B" * 30, gap_s=60.0)
        policy = create_policy("TTL", ttl_s=120.0)
        sim = KeepAliveSimulator(
            trace, policy, memory_mb=1024.0, reserved_concurrency={"A": 1}
        )
        sim.run()
        pinned = [c for c in sim.pool.all_containers() if c.pinned]
        assert len(pinned) == 1  # outlived many TTL windows

    def test_pool_refuses_to_evict_pinned(self):
        pool = ContainerPool(512.0)
        container = Container(make_function("A"), 0.0)
        container.pinned = True
        pool.add(container)
        with pytest.raises(ValueError, match="pinned"):
            pool.evict(container)

    def test_pinned_not_counted_evictable(self):
        pool = ContainerPool(512.0)
        container = Container(make_function("A", memory_mb=256.0), 0.0)
        container.pinned = True
        pool.add(container)
        assert pool.evictable_mb() == 0.0
        assert pool.idle_containers() == []

    def test_simulate_forwards_reserved_concurrency(self):
        trace = make_trace("AAA", gap_s=10.0)
        result = simulate(
            trace, "GD", 1024.0, reserved_concurrency={"A": 1}
        )
        assert result.metrics.cold_starts == 0

    def test_reserved_unknown_function_rejected(self):
        trace = make_trace("A", gap_s=10.0)
        with pytest.raises(ValueError, match="not in trace"):
            simulate(trace, "GD", 1024.0, reserved_concurrency={"Z": 1})

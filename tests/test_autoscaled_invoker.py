"""Tests for the Figure 4 loop: controller attached to the invoker."""

import pytest

from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.provisioning.controller import ProportionalController
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.traces.synth import multitenant_trace


@pytest.fixture(scope="module")
def trace():
    return multitenant_trace(duration_s=3600.0, num_tenants=24)


@pytest.fixture(scope="module")
def curve(trace):
    return HitRatioCurve.from_distances(reuse_distances(trace))


def make_controller(curve, trace, initial_mb, **kwargs):
    defaults = dict(
        desired_miss_ratio=0.05,
        mean_arrival_rate=trace.arrival_rate(),
        initial_size_mb=initial_mb,
        max_size_mb=initial_mb,
        control_period_s=300.0,
    )
    defaults.update(kwargs)
    return ProportionalController.from_miss_ratio_target(curve, **defaults)


class TestAutoscaledInvoker:
    def test_controller_runs_and_records_history(self, trace, curve):
        controller = make_controller(curve, trace, 8192.0)
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=8192.0, cpu_cores=16),
            policy="GD",
            controller=controller,
        )
        result = invoker.run(trace)
        assert result.total == len(trace)
        # Roughly one decision per 300 s period over the hour.
        assert 10 <= len(controller.history) <= 14

    def test_oversized_pool_gets_deflated(self, trace, curve):
        controller = make_controller(curve, trace, 16_384.0, deadband=0.1)
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=16_384.0, cpu_cores=16),
            policy="GD",
            controller=controller,
        )
        invoker.run(trace)
        # The workload needs far less than 16 GB; the controller must
        # have shrunk the pool at least once.
        assert invoker.deflations
        assert invoker.pool.pool.capacity_mb < 16_384.0

    def test_static_invoker_unaffected(self, trace):
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=8192.0, cpu_cores=16), policy="GD"
        )
        invoker.run(trace)
        assert invoker.deflations == []
        assert invoker.pool.pool.capacity_mb == 8192.0

    def test_default_deflation_engine_created(self, curve, trace):
        controller = make_controller(curve, trace, 8192.0)
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=8192.0), policy="GD",
            controller=controller,
        )
        assert invoker.deflation_engine is not None

    def test_service_continues_after_deflation(self, trace, curve):
        controller = make_controller(curve, trace, 16_384.0, deadband=0.1)
        invoker = SimulatedInvoker(
            InvokerConfig(memory_mb=16_384.0, cpu_cores=16),
            policy="GD",
            controller=controller,
        )
        result = invoker.run(trace)
        # Deflation must not strand requests: everything is accounted
        # for and the drop share stays small on this over-provisioned
        # server.
        assert result.served + result.dropped == result.total
        assert result.dropped < 0.05 * result.total

"""Tests for Che's approximation and the TTL cache model."""

import math
import random

import pytest

from repro.provisioning.analytical import (
    FunctionArrivalModel,
    characteristic_time,
    equivalent_cache_size_mb,
    equivalent_ttl,
    lru_hit_ratio,
    models_from_trace,
    per_function_hit_ratios,
    ttl_expected_memory_mb,
    ttl_hit_ratio,
)
from repro.sim.scheduler import simulate
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import periodic_arrivals
from tests.conftest import make_trace


def poisson_trace(num_functions=30, duration_s=20_000.0, seed=5):
    """Poisson arrivals with heterogeneous rates and sizes; negligible
    execution times so concurrency effects vanish."""
    rng = random.Random(seed)
    functions = []
    invocations = []
    for i in range(num_functions):
        rate = 10 ** rng.uniform(-3.0, -1.0)  # 0.001 .. 0.1 per second
        size = rng.choice([64.0, 128.0, 256.0, 512.0])
        f = TraceFunction(f"f{i}", size, 1e-3, 2e-3)
        functions.append(f)
        invocations += periodic_arrivals(
            f.name, 1.0 / rate, duration_s, jitter=1.0, rng=rng
        )
    return Trace(functions, invocations, name="poisson")


class TestModelBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionArrivalModel("f", 0.0, 100.0)
        with pytest.raises(ValueError):
            FunctionArrivalModel("f", 1.0, 0.0)

    def test_models_from_trace(self):
        trace = make_trace("AABBBC", gap_s=10.0)
        models = {m.name: m for m in models_from_trace(trace)}
        assert set(models) == {"A", "B"}  # C has a single invocation
        assert models["B"].rate_per_s == pytest.approx(3 / 50.0)

    def test_models_from_empty_trace(self):
        trace = make_trace("AB")
        with pytest.raises(ValueError):
            models_from_trace(trace)


class TestTTLModel:
    def test_zero_ttl_zero_everything(self):
        models = [FunctionArrivalModel("f", 1.0, 100.0)]
        assert ttl_expected_memory_mb(models, 0.0) == 0.0
        assert ttl_hit_ratio(models, 0.0) == 0.0

    def test_memory_saturates_at_working_set(self):
        models = [
            FunctionArrivalModel("a", 1.0, 100.0),
            FunctionArrivalModel("b", 2.0, 200.0),
        ]
        assert ttl_expected_memory_mb(models, 1e9) == pytest.approx(300.0)

    def test_hit_ratio_monotone_in_ttl(self):
        models = [
            FunctionArrivalModel("a", 0.1, 100.0),
            FunctionArrivalModel("b", 0.01, 100.0),
        ]
        values = [ttl_hit_ratio(models, t) for t in (1.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_known_value(self):
        models = [FunctionArrivalModel("f", 1.0, 100.0)]
        assert ttl_hit_ratio(models, 1.0) == pytest.approx(1 - math.exp(-1))


class TestCharacteristicTime:
    def test_single_function_closed_form(self):
        models = [FunctionArrivalModel("f", 1.0, 100.0)]
        # 100 (1 - e^-T) = 50  ->  T = ln 2
        assert characteristic_time(models, 50.0) == pytest.approx(
            math.log(2.0), rel=1e-6
        )

    def test_infinite_when_cache_fits_working_set(self):
        models = [FunctionArrivalModel("f", 1.0, 100.0)]
        assert math.isinf(characteristic_time(models, 100.0))
        assert lru_hit_ratio(models, 100.0) == 1.0

    def test_monotone_in_cache_size(self):
        models = [
            FunctionArrivalModel(f"f{i}", 0.1 * (i + 1), 100.0)
            for i in range(5)
        ]
        times = [characteristic_time(models, c) for c in (100.0, 250.0, 400.0)]
        assert times == sorted(times)

    def test_occupancy_at_tc_equals_cache_size(self):
        models = [
            FunctionArrivalModel("a", 0.5, 300.0),
            FunctionArrivalModel("b", 0.05, 700.0),
        ]
        cache = 400.0
        t_c = characteristic_time(models, cache)
        assert ttl_expected_memory_mb(models, t_c) == pytest.approx(
            cache, rel=1e-6
        )

    def test_validation(self):
        models = [FunctionArrivalModel("f", 1.0, 100.0)]
        with pytest.raises(ValueError):
            characteristic_time(models, 0.0)


class TestEquivalence:
    def test_round_trip(self):
        models = [
            FunctionArrivalModel("a", 0.3, 100.0),
            FunctionArrivalModel("b", 0.03, 400.0),
            FunctionArrivalModel("c", 0.003, 900.0),
        ]
        cache = 500.0
        ttl = equivalent_ttl(models, cache)
        assert equivalent_cache_size_mb(models, ttl) == pytest.approx(
            cache, rel=1e-6
        )

    def test_per_function_hit_ratios_ordering(self):
        models = [
            FunctionArrivalModel("hot", 1.0, 100.0),
            FunctionArrivalModel("cold", 0.001, 100.0),
        ]
        ratios = per_function_hit_ratios(models, 100.0)
        assert ratios["hot"] > ratios["cold"]


class TestAgainstSimulation:
    def test_che_predicts_simulated_lru(self):
        """Che's approximation must track the simulator's LRU hit
        ratio across cache sizes on a Poisson workload."""
        trace = poisson_trace()
        models = models_from_trace(trace)
        working_set = sum(m.size_mb for m in models)
        for fraction in (0.3, 0.5, 0.7):
            cache = fraction * working_set
            predicted = lru_hit_ratio(models, cache)
            simulated = simulate(trace, "LRU", cache).metrics.hit_ratio
            assert predicted == pytest.approx(simulated, abs=0.08), fraction

    def test_ttl_model_predicts_simulated_ttl(self):
        trace = poisson_trace()
        models = models_from_trace(trace)
        ttl = 120.0
        predicted = ttl_hit_ratio(models, ttl)
        simulated = simulate(
            trace, "TTL", 10_000_000.0, ttl_s=ttl
        ).metrics.hit_ratio
        assert predicted == pytest.approx(simulated, abs=0.08)

    def test_ttl_lru_equivalence_in_simulation(self):
        """A TTL of T_C gives (approximately) the same hit ratio as an
        LRU cache of size C — the paper's Figure 5c explanation."""
        trace = poisson_trace()
        models = models_from_trace(trace)
        cache = 0.5 * sum(m.size_mb for m in models)
        t_c = equivalent_ttl(models, cache)
        lru_sim = simulate(trace, "LRU", cache).metrics.hit_ratio
        ttl_sim = simulate(
            trace, "TTL", 10_000_000.0, ttl_s=t_c
        ).metrics.hit_ratio
        assert lru_sim == pytest.approx(ttl_sim, abs=0.08)

"""Live serving mode: clocks, the thread-safe service, and sim/live
equivalence (docs/live-serving.md)."""

from __future__ import annotations

import threading

import pytest

from repro.core.clock import Clock, RealTimeClock, SimClock
from repro.core.policies.base import create_policy
from repro.live.latency import LatencyHistogram
from repro.live.service import LivePoolService, UnknownFunctionError
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.synth import skewed_frequency_trace


class SteppingSource:
    """A mocked time source the test advances by hand."""

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


class TestClocks:
    def test_sim_clock_monotone(self):
        clock = SimClock()
        clock.advance_to(2.5)
        assert clock.now() == 2.5
        clock.advance_to(1.0)  # never rewinds
        assert clock.now() == 2.5

    def test_sim_clock_round_trips_instants_exactly(self):
        # The byte-identical-fingerprints property: advance_to/now must
        # return each arrival's float unchanged.
        clock = SimClock()
        for value in (0.1, 1e-9 + 0.3, 12345.678901, 86_400.0):
            clock.advance_to(value)
            assert clock.now() == value

    def test_real_time_clock_with_mocked_source(self):
        source = SteppingSource(10.0)
        clock = RealTimeClock(time_source=source, epoch_s=0.0)
        assert clock.now() == 10.0
        source.value = 17.5
        assert clock.now() == 17.5

    def test_real_time_clock_rebases_to_start(self):
        source = SteppingSource(100.0)
        clock = RealTimeClock(time_source=source, start_s=5.0)
        assert clock.now() == 5.0
        source.value = 103.0
        assert clock.now() == 8.0

    def test_clock_protocol(self):
        assert isinstance(SimClock(), Clock)
        assert isinstance(RealTimeClock(), Clock)

    def test_default_real_time_clock_advances(self):
        clock = RealTimeClock()
        first = clock.now()
        second = clock.now()
        assert second >= first >= 0.0

    def test_simulator_owns_a_sim_clock(self):
        trace = skewed_frequency_trace(seed=5)
        sim = KeepAliveSimulator(trace, create_policy("GD"), 1024.0)
        assert isinstance(sim.clock, SimClock)
        sim.run()
        # After a replay the clock sits at the last arrival.
        last = max(inv.time_s for inv in trace)
        assert sim.clock.now() == last


class TestSimLiveEquivalence:
    """The tentpole invariant: one policy engine, two drivers."""

    MEMORY_MB = 1024.0  # tight enough to force evictions and drops

    def _sim_outcomes(self, trace, policy_name):
        sim = KeepAliveSimulator(
            trace, create_policy(policy_name), self.MEMORY_MB
        )
        functions = trace.functions
        outcomes = [
            sim.process_invocation(functions[inv.function_name], inv.time_s)
            for inv in trace
        ]
        return outcomes, sim.metrics.counters()

    @pytest.mark.parametrize("policy_name", ["GD", "TTL", "HIST"])
    def test_real_clock_with_mocked_source_matches_sim(self, policy_name):
        trace = skewed_frequency_trace(seed=7)
        sim_outcomes, sim_counters = self._sim_outcomes(trace, policy_name)

        source = SteppingSource()
        clock = RealTimeClock(time_source=source, epoch_s=0.0)
        service = LivePoolService(
            trace, policy_name, self.MEMORY_MB, clock=clock
        )
        live_outcomes = []
        for inv in trace:
            source.value = inv.time_s  # the mocked wall clock ticks
            decision = service.admit(inv.function_name)
            assert decision.now_s == inv.time_s
            live_outcomes.append(decision.outcome)

        assert live_outcomes == sim_outcomes
        assert service.counters() == sim_counters

    def test_sim_clock_service_matches_sim(self):
        trace = skewed_frequency_trace(seed=11)
        sim_outcomes, sim_counters = self._sim_outcomes(trace, "GD")
        service = LivePoolService(
            trace, "GD", self.MEMORY_MB, clock=SimClock()
        )
        live_outcomes = [
            service.admit(inv.function_name, inv.time_s).outcome
            for inv in trace
        ]
        assert live_outcomes == sim_outcomes
        assert service.counters() == sim_counters

    def test_matches_one_shot_simulate(self):
        trace = skewed_frequency_trace(seed=13)
        result = simulate(trace, "GD", self.MEMORY_MB)
        service = LivePoolService(
            trace, "GD", self.MEMORY_MB, clock=SimClock()
        )
        for inv in trace:
            service.admit(inv.function_name, inv.time_s)
        # finalize() adds no decisions on a fault-free run, so the
        # live counters equal the full simulate() counters.
        assert service.counters() == result.metrics.counters()


class TestLivePoolService:
    def test_unknown_function_raises(self):
        trace = skewed_frequency_trace(seed=1)
        service = LivePoolService(trace, "GD", 4096.0, clock=SimClock())
        with pytest.raises(UnknownFunctionError):
            service.admit("no-such-function")

    def test_real_clock_ignores_client_now(self):
        # Clients must not be able to time-travel a real-time pool.
        trace = skewed_frequency_trace(seed=1)
        source = SteppingSource(5.0)
        service = LivePoolService(
            trace,
            "GD",
            4096.0,
            clock=RealTimeClock(time_source=source, epoch_s=0.0),
        )
        name = next(iter(trace.functions))
        decision = service.admit(name, now_s=999.0)
        assert decision.now_s == 5.0

    def test_release_returns_completions(self):
        trace = skewed_frequency_trace(seed=1)
        service = LivePoolService(trace, "GD", 4096.0, clock=SimClock())
        name = next(iter(trace.functions))
        service.admit(name, now_s=0.0)
        assert service.stats()["outstanding"] == 1
        released = service.release(now_s=10_000.0)
        assert released == 1
        assert service.stats()["outstanding"] == 0

    def test_expire_tick_drains_ttl_expirations(self):
        trace = skewed_frequency_trace(seed=1)
        policy = create_policy("TTL", ttl_s=60.0)
        service = LivePoolService(trace, policy, 4096.0, clock=SimClock())
        name = next(iter(trace.functions))
        service.admit(name, now_s=0.0)
        # The timer path: no arrival ever fires again, yet the idle
        # container must still expire once its TTL passes.
        expired = service.expire_tick(now_s=10_000.0)
        assert expired == 1
        assert service.counters()["expirations"] == 1
        assert service.stats()["pool"]["containers"] == 0

    def test_stats_shape(self):
        trace = skewed_frequency_trace(seed=1)
        service = LivePoolService(trace, "GD", 4096.0, clock=SimClock())
        for inv in trace:
            if inv.time_s > 600.0:
                break
            service.admit(inv.function_name, inv.time_s)
        stats = service.stats()
        assert set(stats["decisions"]) <= {
            "warm", "cold", "dropped", "retried", "shed",
        }
        total = sum(stats["decisions"].values())
        assert stats["decision_latency"]["count"] == float(total)
        assert stats["decision_latency"]["p99_us"] > 0.0
        assert stats["pool"]["capacity_mb"] == 4096.0
        assert stats["counters"]["warm_starts"] >= 0

    def test_concurrent_admits_are_serialized(self):
        # Many threads, one lock: every admission lands exactly once.
        trace = skewed_frequency_trace(seed=2)
        service = LivePoolService(trace, "GD", 8192.0)
        names = list(trace.functions)
        per_thread = 200
        errors = []

        def hammer(name):
            try:
                for __ in range(per_thread):
                    service.admit(name)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(names[i % len(names)],))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = service.stats()
        assert sum(stats["decisions"].values()) == 8 * per_thread
        counters = stats["counters"]
        assert (
            counters["warm_starts"]
            + counters["cold_starts"]
            + counters["dropped"]
            == 8 * per_thread
        )


class TestLatencyHistogram:
    def test_percentiles_ordered(self):
        hist = LatencyHistogram()
        for i in range(1, 1001):
            hist.record(i * 1e-6)
        p50 = hist.percentile(0.5)
        p99 = hist.percentile(0.99)
        p999 = hist.percentile(0.999)
        assert 0.0 < p50 <= p99 <= p999 <= hist.percentile(1.0)
        # Log-bucket relative error stays modest at the median.
        assert 3e-4 < p50 < 8e-4

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        assert hist.summary()["count"] == 0.0

    def test_extremes_clamped(self):
        hist = LatencyHistogram()
        hist.record(0.0)  # below the first bucket
        hist.record(1e9)  # beyond the last bucket
        assert hist.count == 2
        # Out-of-range samples land in the edge buckets; the recorded
        # extremes stay exact in the summary.
        assert hist.percentile(1.0) > 10.0
        assert hist.summary()["max_us"] == 1e15

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for i in range(100):
            a.record(1e-5)
            b.record(1e-3)
        a.merge(b)
        assert a.count == 200
        assert a.percentile(0.25) < 1e-4 < a.percentile(0.75)

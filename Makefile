# Convenience targets for the FaasCache reproduction.

PYTHON ?= python

.PHONY: install ci-install test bench bench-pytest bench-ci fairness serve live-smoke lint typecheck check check-incremental sanitize examples reproduce clean

install:
	$(PYTHON) setup.py develop

# The editable install CI jobs use (mirrors .github/actions/setup).
# EXTRAS selects optional dependency groups: make ci-install EXTRAS=[dev]
ci-install:
	$(PYTHON) -m pip install -e ".$(EXTRAS)"

test:
	$(PYTHON) -m pytest tests/

# Pinned-seed replay suite gated against the checked-in baseline
# (docs/performance.md). Writes BENCH_local.json.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py --baseline benchmarks/BASELINE.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable bench gate (what CI uploads as BENCH_ci.json).
bench-ci:
	$(PYTHON) benchmarks/ci_export.py --out BENCH_ci.json

# Multi-tenant fairness determinism gate (docs/multi-tenancy.md):
# noisy-neighbor Jain's index pinned vs benchmarks/TENANT_FAIRNESS.json.
fairness:
	PYTHONPATH=src $(PYTHON) benchmarks/tenant_fairness_gate.py

# Live serving mode (docs/live-serving.md): a GD server on the
# built-in skewed-frequency workload. Override: make serve TRACE=day.json
TRACE ?= skewed-frequency
serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve --trace $(TRACE) \
		--policy GD --memory-gb 8 --port 8077

# Two-process serve+loadgen smoke gate: zero 5xx, server/client
# counter consistency, calibration-normalized decision p99 ceiling.
live-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/live_smoke_gate.py

# Both need their tool installed (pip install -e ".[lint]" / ".[typecheck]").
lint:
	ruff check src tests benchmarks
	$(PYTHON) -m compileall -q src

typecheck:
	mypy src/repro

# The determinism & invariant linter (rules FC001-FC011; see
# docs/static-analysis.md). Stdlib-only: needs no extra installs.
# Uses the incremental cache (.repro-checks-cache.json) so warm
# re-runs finish in well under 2 seconds.
check:
	PYTHONPATH=src $(PYTHON) -m repro.checks src tests --stats

# CI's incremental-cache contract, locally: a cold run then a warm
# run, which must agree finding-for-finding (modulo the cache
# section of the stats) and hit the cache on every file.
check-incremental:
	rm -f .repro-checks-cache.json
	PYTHONPATH=src $(PYTHON) -m repro.checks src tests --stats-json .stats_cold.json
	PYTHONPATH=src $(PYTHON) -m repro.checks src tests --stats-json .stats_warm.json
	PYTHONPATH=src $(PYTHON) -c "import json; \
		cold = json.load(open('.stats_cold.json')); \
		warm = json.load(open('.stats_warm.json')); \
		assert warm['cache']['hit_rate'] == 1.0, warm['cache']; \
		cold.pop('cache'); warm.pop('cache'); \
		assert cold == warm, (cold, warm); \
		print('cold and warm runs agree')"

# Tier-1 tests with the runtime invariant sanitizer hooks enabled.
sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

# The full reproduction record: tests + every table/figure, tee'd to
# the repository root as EXPERIMENTS.md expects.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

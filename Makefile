# Convenience targets for the FaasCache reproduction.

PYTHON ?= python

.PHONY: install ci-install test bench bench-pytest bench-ci fairness lint typecheck check sanitize examples reproduce clean

install:
	$(PYTHON) setup.py develop

# The editable install CI jobs use (mirrors .github/actions/setup).
# EXTRAS selects optional dependency groups: make ci-install EXTRAS=[dev]
ci-install:
	$(PYTHON) -m pip install -e ".$(EXTRAS)"

test:
	$(PYTHON) -m pytest tests/

# Pinned-seed replay suite gated against the checked-in baseline
# (docs/performance.md). Writes BENCH_local.json.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py --baseline benchmarks/BASELINE.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable bench gate (what CI uploads as BENCH_ci.json).
bench-ci:
	$(PYTHON) benchmarks/ci_export.py --out BENCH_ci.json

# Multi-tenant fairness determinism gate (docs/multi-tenancy.md):
# noisy-neighbor Jain's index pinned vs benchmarks/TENANT_FAIRNESS.json.
fairness:
	PYTHONPATH=src $(PYTHON) benchmarks/tenant_fairness_gate.py

# Both need their tool installed (pip install -e ".[lint]" / ".[typecheck]").
lint:
	ruff check src tests benchmarks
	$(PYTHON) -m compileall -q src

typecheck:
	mypy src/repro

# The determinism & invariant linter (rules FC001-FC008; see
# docs/static-analysis.md). Stdlib-only: needs no extra installs.
check:
	PYTHONPATH=src $(PYTHON) -m repro.checks src tests --stats

# Tier-1 tests with the runtime invariant sanitizer hooks enabled.
sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

# The full reproduction record: tests + every table/figure, tee'd to
# the repository root as EXPERIMENTS.md expects.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

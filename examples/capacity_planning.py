#!/usr/bin/env python3
"""Capacity planning with hit-ratio curves (the Section 5.1 workflow).

Shows the static-provisioning pipeline end to end:

1. compute size-weighted reuse distances for a workload (exact
   Fenwick-tree scan, plus a SHARDS sampled estimate for scale),
2. build the hit-ratio curve (Equation 2),
3. size the server by target hit ratio and by the curve's knee,
4. validate the chosen size in the keep-alive simulator.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.reporting import format_table
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.provisioning.shards import shards_curve
from repro.provisioning.static_provisioning import StaticProvisioner
from repro.sim.scheduler import simulate
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import representative_sample
from repro.traces.preprocess import dataset_to_trace


def main() -> None:
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=1000, max_daily_invocations=6000),
        seed=4,
    )
    sample = representative_sample(dataset, n=200, seed=4)
    trace = dataset_to_trace(dataset, sample, name="planning")
    print(f"Workload: {trace.num_functions} functions, {len(trace)} invocations")

    # --- Exact curve from reuse distances.
    distances = reuse_distances(trace)
    curve = HitRatioCurve.from_distances(distances)
    print(
        f"Working set: {curve.working_set_mb / 1024:.1f} GB, "
        f"max achievable hit ratio {curve.max_hit_ratio:.1%}"
    )

    # --- SHARDS estimate at 25% sampling, for comparison.
    sampled = shards_curve(trace, rate=0.25, seed=4)
    rows = []
    for gb in (2.0, 5.0, 10.0, 20.0):
        rows.append(
            [gb, curve.hit_ratio(gb * 1024), sampled.hit_ratio(gb * 1024)]
        )
    print()
    print(
        format_table(
            ["Cache (GB)", "Exact HR", "SHARDS (25%) HR"],
            rows,
            title="Hit-ratio curve: exact vs SHARDS estimate",
        )
    )

    # --- Provisioning decisions.
    print()
    rows = []
    for strategy, kwargs in (
        ("target-hit-ratio", {"target_hit_ratio": 0.90}),
        ("inflection", {}),
    ):
        decision = StaticProvisioner(curve, strategy=strategy, **kwargs).decide()
        measured = simulate(trace, "GD", decision.memory_mb).metrics
        rows.append(
            [
                strategy,
                decision.memory_gb,
                decision.predicted_hit_ratio,
                measured.hit_ratio,
                measured.exec_time_increase_pct,
            ]
        )
    print(
        format_table(
            [
                "Strategy",
                "Size (GB)",
                "Predicted HR",
                "Simulated HR",
                "Exec incr. %",
            ],
            rows,
            title="Static provisioning decisions, validated in simulation",
        )
    )


if __name__ == "__main__":
    main()

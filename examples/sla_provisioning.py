#!/usr/bin/env python3
"""SLA-driven capacity planning.

An operator's contract is a response-time bound, not a hit ratio.
This example sizes a server three ways for the same Azure-like
workload and compares what each costs:

1. hit-ratio target (the paper's Section 5.1 recipe),
2. the hit-ratio curve's knee,
3. the smallest memory meeting "p95 response time under 2x the warm
   time for every function" (bisection over simulated sizes),

then prints the full Markdown capacity plan.

Run:  python examples/sla_provisioning.py
"""

from repro.analysis.reporting import format_table
from repro.provisioning.report import build_capacity_plan, render_capacity_plan
from repro.provisioning.sla import (
    SLATarget,
    minimum_memory_for_sla,
    sla_violations,
)
from repro.provisioning.static_provisioning import (
    StaticProvisioner,
    curve_from_trace,
)
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace
from repro.traces.sampling import representative_sample


def main() -> None:
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=600, max_daily_invocations=3000),
        seed=17,
    )
    sample = representative_sample(dataset, n=120, seed=17)
    trace = dataset_to_trace(dataset, sample, name="sla-demo")
    print(f"Workload: {trace.num_functions} functions, {len(trace)} invocations")

    curve = curve_from_trace(trace)
    # The bound must sit above every function's warm time (a slower-
    # than-the-bound function can never meet it, warm or not); just
    # above the slowest warm time, the SLA forces cold starts to be
    # rare for every function whose init would push it past the line.
    slowest_warm = max(f.warm_time_s for f in trace.functions.values())
    target = SLATarget(percentile=95.0, max_response_time_s=1.25 * slowest_warm)

    rows = []
    for label, memory_mb in (
        (
            "target HR 90%",
            StaticProvisioner(curve, target_hit_ratio=0.9).decide().memory_mb,
        ),
        ("inflection", StaticProvisioner(curve, strategy="inflection").decide().memory_mb),
        (
            f"SLA p{target.percentile:.0f} < {target.max_response_time_s:.2f}s",
            minimum_memory_for_sla(trace, target, tolerance_mb=256.0),
        ),
    ):
        if memory_mb is None:
            rows.append([label, "unmeetable", "-"])
            continue
        violators = sla_violations(trace, "GD", memory_mb, target)
        rows.append(
            [label, memory_mb / 1024.0, "yes" if not violators else
             f"no ({len(violators)} fn)"]
        )
    print()
    print(
        format_table(
            ["Strategy", "Size (GB)", "Meets SLA?"],
            rows,
            title="Three ways to size the same server",
        )
    )

    print()
    print(render_capacity_plan(build_capacity_plan(trace)))


if __name__ == "__main__":
    main()

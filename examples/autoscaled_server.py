#!/usr/bin/env python3
"""Dynamic vertical scaling with the proportional controller (Fig. 9).

Replays a diurnal Azure-like workload against a Greedy-Dual keep-alive
server whose cache size is resized every 10 minutes by the hit-ratio-
curve proportional controller (30% deadband), actuated by cascade
deflation. Prints the size/miss-speed timeline and the average-size
saving over a conservative static provision.

Run:  python examples/autoscaled_server.py
"""

from repro.analysis.reporting import format_series_table, format_table
from repro.provisioning.autoscale import AutoscaledSimulation
from repro.provisioning.controller import ProportionalController
from repro.provisioning.deflation import DeflationEngine
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace
from repro.traces.sampling import representative_sample


def main() -> None:
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=1000, max_daily_invocations=6000),
        seed=12,
    )
    sample = representative_sample(dataset, n=150, seed=12)
    trace = dataset_to_trace(dataset, sample, name="diurnal")
    print(
        f"Workload: {trace.num_functions} functions, {len(trace)} "
        f"invocations over {trace.duration_s / 3600:.1f} h"
    )

    curve = HitRatioCurve.from_distances(reuse_distances(trace))
    static_mb = curve.required_size(min(0.95, curve.max_hit_ratio))
    controller = ProportionalController.from_miss_ratio_target(
        curve,
        desired_miss_ratio=0.05,
        mean_arrival_rate=trace.arrival_rate(),
        initial_size_mb=static_mb,
        max_size_mb=static_mb,
        control_period_s=600.0,
        deadband=0.3,
    )
    engine = DeflationEngine()
    result = AutoscaledSimulation(
        trace, controller, policy="GD", deflation_engine=engine
    ).run()

    # Print every other control period to keep the table readable.
    decisions = result.decisions[::2]
    print()
    print(
        format_series_table(
            "Hour",
            [d.time_s / 3600.0 for d in decisions],
            {
                "Size (GB)": [d.cache_size_mb / 1024.0 for d in decisions],
                "Miss speed (/s)": [d.miss_speed for d in decisions],
            },
            title=(
                f"Controller timeline "
                f"(target {controller.target_miss_speed:.4f} misses/s)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["Static (GB)", "Mean dynamic (GB)", "Saving", "Deflations"],
            [[
                static_mb / 1024.0,
                result.mean_cache_size_mb / 1024.0,
                f"{result.savings_vs_static(static_mb):.1%}",
                len(result.deflations),
            ]],
            title="Dynamic scaling vs conservative static provisioning",
        )
    )


if __name__ == "__main__":
    main()

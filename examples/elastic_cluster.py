#!/usr/bin/env python3
"""Horizontal elasticity vs keep-alive (cluster-level tradeoffs).

Routes a diurnal Azure-like day across a cluster whose server count
follows the load (reactive scaling with a scale-down hold, consistent-
hash routing), then compares against a statically peak-provisioned
cluster: elasticity saves server-hours, but every scale-down discards
warm containers and costs cold starts — the paper's latency-vs-
utilization tradeoff, one level up.

Run:  python examples/elastic_cluster.py
"""

from repro.analysis.reporting import format_series_table, format_table
from repro.cluster import ClusterSimulator, ElasticClusterSimulation
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace
from repro.traces.sampling import representative_sample


def main() -> None:
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=900, max_daily_invocations=8000),
        seed=7,
    )
    sample = representative_sample(dataset, n=200, seed=7)
    trace = dataset_to_trace(dataset, sample, name="diurnal-day")
    print(
        f"Workload: {trace.num_functions} functions, {len(trace)} "
        f"invocations, mean rate {trace.arrival_rate():.2f}/s"
    )

    elastic = ElasticClusterSimulation(
        trace,
        server_memory_mb=4096.0,
        min_servers=1,
        max_servers=6,
        requests_per_server_per_s=0.2,
        control_period_s=1800.0,
        scale_down_hold_s=3600.0,
    ).run()
    peak = max(n for __, n in elastic.server_timeline)
    static = ClusterSimulator(
        trace, "hash-affinity", num_servers=peak, server_memory_mb=4096.0
    ).run()

    print()
    print(
        format_series_table(
            "Hour",
            [t / 3600.0 for t, __ in elastic.server_timeline][::2],
            {"Servers": [float(n) for __, n in elastic.server_timeline][::2]},
            title="Active servers over the day (every other control period)",
        )
    )
    print()
    duration_h = trace.duration_s / 3600.0
    print(
        format_table(
            ["Cluster", "Mean servers", "Server-hours", "Cold %"],
            [
                [
                    "elastic",
                    elastic.mean_servers,
                    elastic.server_seconds / 3600.0,
                    elastic.cold_start_pct,
                ],
                [
                    f"static x{peak}",
                    float(peak),
                    peak * duration_h,
                    static.cold_start_pct,
                ],
            ],
            title="Elasticity saves server-hours; scale-downs cost cold starts",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Policy comparison on Azure-like trace samples (the Figure 5 study).

Generates a synthetic day of Azure Functions workload, draws the
paper's three trace samples (rare / representative / random), sweeps
every keep-alive policy across server memory sizes, and prints the
execution-time-increase series — a laptop-scale rerun of the paper's
Figure 5 evaluation.

Run:  python examples/policy_comparison.py
"""

from repro.analysis.reporting import format_series_table
from repro.core.policies import PAPER_POLICIES
from repro.sim.sweep import run_sweep
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import make_paper_traces

MEMORY_GRID_GB = [5.0, 10.0, 20.0, 40.0]


def main() -> None:
    print("Generating a synthetic day of Azure-like FaaS workload ...")
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=1200, max_daily_invocations=8000),
        seed=20,
    )
    traces = make_paper_traces(
        dataset,
        sizes={"rare": 300, "representative": 160, "random": 80},
        seed=20,
    )

    for name, trace in traces.items():
        print(
            f"\n=== {name}: {trace.num_functions} functions, "
            f"{len(trace)} invocations ==="
        )
        sweep = run_sweep(trace, MEMORY_GRID_GB)
        series = {
            policy: [
                value
                for __, value in sweep.series(policy, "exec_time_increase_pct")
            ]
            for policy in PAPER_POLICIES
        }
        print(
            format_series_table(
                "Mem (GB)",
                MEMORY_GRID_GB,
                series,
                title="% increase in execution time due to cold starts",
            )
        )
        winner = sweep.best_policy_at(
            MEMORY_GRID_GB[1], "exec_time_increase_pct"
        )
        print(f"Best policy at {MEMORY_GRID_GB[1]:.0f} GB: {winner}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Advanced policies: clairvoyant bounds, admission control, reservations.

Three extensions beyond the paper's lineup, on one skewed workload:

1. **Clairvoyant bound** — how much headroom is left above GD? The
   ORACLE-CS policy knows the future; the gap between it and GD is
   the most any online policy could still gain.
2. **Doorkeeper admission** — one-shot functions stop polluting the
   cache when retention requires proving yourself twice.
3. **Provisioned concurrency** — pinning a container for a rare but
   latency-critical function guarantees it warm starts, at the cost
   of permanently ceding cache to it.

Run:  python examples/advanced_policies.py
"""

from repro.analysis.reporting import format_table
from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator, simulate
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import cyclic_trace, periodic_arrivals


def policy_ladder() -> None:
    trace = cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=150)
    memory_mb = 2304.0
    rows = []
    for label, policy in (
        ("LRU (recency only)", create_policy("LRU")),
        ("GD (the paper)", create_policy("GD")),
        ("ORACLE (Belady)", create_policy("ORACLE", trace=trace)),
        ("ORACLE-CS (bound)", create_policy("ORACLE-CS", trace=trace)),
    ):
        metrics = simulate(trace, policy, memory_mb).metrics
        rows.append(
            [label, metrics.warm_starts, metrics.exec_time_increase_pct]
        )
    print(
        format_table(
            ["Policy", "Warm starts", "Exec incr. %"],
            rows,
            title="1. The online-to-clairvoyant ladder (cyclic workload)",
        )
    )


def doorkeeper_demo() -> None:
    working = [TraceFunction(f"w{i}", 200.0, 1.0, 4.0) for i in range(4)]
    scans = [TraceFunction(f"s{i}", 200.0, 1.0, 4.0) for i in range(60)]
    invocations = []
    t = 0.0
    for round_ in range(12):
        for f in working:
            invocations.append(Invocation(t, f.name))
            t += 3.0
        for f in scans[round_ * 5 : (round_ + 1) * 5]:
            invocations.append(Invocation(t, f.name))
            t += 3.0
    trace = Trace(working + scans, invocations, name="scan-pollution")

    rows = []
    for label, policy in (
        ("GD", create_policy("GD")),
        ("DOORKEEPER(GD)", create_policy("DOORKEEPER", inner="GD")),
    ):
        metrics = simulate(trace, policy, 1000.0).metrics
        working_warm = sum(metrics.per_function[f.name].warm for f in working)
        rows.append([label, working_warm, metrics.warm_starts])
    print()
    print(
        format_table(
            ["Policy", "Working-set warm", "Total warm"],
            rows,
            title="2. Admission control under one-shot scan pollution",
        )
    )


def provisioned_concurrency_demo() -> None:
    vip = TraceFunction("vip-checkout", 100.0, warm_time_s=0.5, cold_time_s=4.0)
    churners = [
        TraceFunction(f"bg{i}", 150.0, warm_time_s=0.5, cold_time_s=2.0)
        for i in range(2)
    ]
    invocations = [Invocation(900.0 * i + 450.0, "vip-checkout") for i in range(8)]
    for i, f in enumerate(churners):
        invocations += periodic_arrivals(f.name, 10.0, 7200.0, start_s=5.0 * i)
    trace = Trace([vip] + churners, invocations, name="vip")

    rows = []
    for label, reserved in (("no reservation", None), ("vip pinned", {"vip-checkout": 1})):
        sim = KeepAliveSimulator(
            trace, create_policy("GD"), 350.0,
            reserved_concurrency=reserved,
        )
        metrics = sim.run().metrics
        outcome = metrics.per_function["vip-checkout"]
        rows.append([label, outcome.warm, outcome.cold])
    print()
    print(
        format_table(
            ["Configuration", "VIP warm", "VIP cold"],
            rows,
            title="3. Provisioned concurrency for a rare, critical function",
        )
    )


def main() -> None:
    policy_ladder()
    doorkeeper_demo()
    provisioned_concurrency_demo()


if __name__ == "__main__":
    main()

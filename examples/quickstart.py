#!/usr/bin/env python3
"""Quickstart: compare keep-alive policies on one workload.

Builds a heterogeneous cyclic workload (the classic recency-adversarial
pattern), replays it through the trace-driven keep-alive simulator
under every policy, and prints the cold-start ratio and the
execution-time inflation each policy produces. Greedy-Dual pins the
small, expensive-to-initialize functions and wins decisively; pure
recency (LRU, and TTL under pressure) thrashes.

Run:  python examples/quickstart.py
"""

from repro import PAPER_POLICIES, simulate
from repro.analysis.reporting import format_table
from repro.traces.synth import cyclic_trace


def main() -> None:
    trace = cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=150)
    print(
        f"Workload: {trace.name!r} — {trace.num_functions} functions, "
        f"{len(trace)} invocations over {trace.duration_s / 60:.0f} minutes"
    )

    memory_mb = 2304.0  # ~60% of the cycle's working set
    rows = []
    for policy in PAPER_POLICIES:
        result = simulate(trace, policy, memory_mb)
        m = result.metrics
        rows.append(
            [
                policy,
                m.warm_starts,
                m.cold_starts,
                m.dropped,
                m.cold_start_pct,
                m.exec_time_increase_pct,
            ]
        )
    rows.sort(key=lambda r: r[-1])
    print()
    print(
        format_table(
            ["Policy", "Warm", "Cold", "Dropped", "Cold %", "Exec incr. %"],
            rows,
            title=f"Keep-alive policies on a {memory_mb:.0f} MB server",
        )
    )
    print()
    best = rows[0][0]
    print(f"Lowest execution-time inflation: {best}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cluster-level load balancing and keep-alive locality (Section 9).

The paper evaluates at single-server scope but discusses how the
cluster's load balancer shapes each server's function mix and hence
its keep-alive effectiveness. This example routes one Azure-like
workload across a four-server cluster under four balancing policies —
random, round-robin, least-loaded, and stateful hash-affinity — with
Greedy-Dual keep-alive on every server, and compares the aggregate
cold-start rate against the load imbalance each policy induces.

Run:  python examples/cluster_load_balancing.py
"""

from repro.analysis.reporting import format_table
from repro.cluster import ClusterSimulator
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.preprocess import dataset_to_trace
from repro.traces.sampling import representative_sample

NUM_SERVERS = 4
SERVER_MEMORY_GB = 4.0
BALANCERS = ("random", "round-robin", "least-loaded", "hash-affinity")


def main() -> None:
    dataset = generate_azure_dataset(
        AzureGeneratorConfig(num_functions=900, max_daily_invocations=8000),
        seed=7,
    )
    sample = representative_sample(dataset, n=150, seed=3)
    trace = dataset_to_trace(dataset, sample, name="cluster-workload")
    print(
        f"Workload: {trace.num_functions} functions, {len(trace)} "
        f"invocations across {NUM_SERVERS} x {SERVER_MEMORY_GB:.0f} GB servers"
    )

    rows = []
    for balancer in BALANCERS:
        result = ClusterSimulator(
            trace,
            balancer,
            num_servers=NUM_SERVERS,
            server_memory_mb=SERVER_MEMORY_GB * 1024.0,
            policy="GD",
        ).run()
        rows.append(
            [
                balancer,
                result.cold_start_pct,
                result.exec_time_increase_pct,
                result.dropped,
                result.load_imbalance(),
            ]
        )
    print()
    print(
        format_table(
            ["Balancer", "Cold %", "Exec incr. %", "Dropped", "Imbalance"],
            rows,
            title="Load balancing vs keep-alive locality (GD on every server)",
        )
    )
    print()
    print(
        "Stateful hash-affinity routing concentrates each function's\n"
        "temporal locality on one server: far fewer cold starts, at the\n"
        "price of a less balanced request load — exactly the tradeoff\n"
        "the paper's Section 9 describes."
    )


if __name__ == "__main__":
    main()

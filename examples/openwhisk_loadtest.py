#!/usr/bin/env python3
"""OpenWhisk-vs-FaasCache load test (the Section 7.2 experiment).

Runs the paper's litmus workloads against the simulated invoker twice
— once with vanilla OpenWhisk's 10-minute TTL keep-alive and once
with FaasCache's online Greedy-Dual pool (learned init costs, batched
eviction) — and prints the warm/cold/dropped breakdown and latency of
each system.

Run:  python examples/openwhisk_loadtest.py
"""

from repro.analysis.reporting import format_table
from repro.openwhisk.invoker import InvokerConfig
from repro.openwhisk.loadgen import compare_keepalive_systems
from repro.traces.synth import (
    cyclic_trace,
    multitenant_trace,
    skewed_size_trace,
)


def main() -> None:
    experiments = {
        "cyclic": (
            cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=200),
            InvokerConfig(memory_mb=1664.0, cpu_cores=8),
        ),
        "skewed-size": (
            skewed_size_trace(duration_s=2400.0),
            InvokerConfig(memory_mb=4838.0, cpu_cores=8),
        ),
        "multi-tenant (fig. 8)": (
            multitenant_trace(duration_s=2400.0),
            InvokerConfig(memory_mb=12_288.0, cpu_cores=16),
        ),
    }

    rows = []
    for name, (trace, config) in experiments.items():
        print(f"Running {name!r} ({len(trace)} requests) ...")
        cmp = compare_keepalive_systems(trace, config)
        for label, result in (
            ("OpenWhisk", cmp.openwhisk),
            ("FaasCache", cmp.faascache),
        ):
            rows.append(
                [
                    name,
                    label,
                    result.warm_starts,
                    result.cold_starts,
                    result.dropped,
                    result.mean_latency_s(),
                ]
            )
        rows.append(
            [
                name,
                "-> gain",
                f"x{cmp.warm_start_gain:.2f}",
                "",
                "",
                f"x{cmp.latency_improvement:.2f}",
            ]
        )

    print()
    print(
        format_table(
            ["Workload", "System", "Warm", "Cold", "Dropped", "Mean lat. (s)"],
            rows,
            title="Vanilla OpenWhisk vs FaasCache on the simulated invoker",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Live-serving smoke gate (docs/live-serving.md).

Boots ``repro-faascache serve`` as a real child process on an
ephemeral port, replays a built-in trace through ``repro-faascache
loadgen`` over actual loopback sockets, and fails on:

* any 5xx response,
* any server/client decision-counter inconsistency,
* a calibration-normalized decision-latency p99 above the ceiling.

This is the two-process path — CLI parsing, signal handling, and the
port-announce handshake included — as opposed to the in-process
``live_smoke`` bench scenario. CI's ``live-smoke`` job and
``make live-smoke`` both run this script.

Usage: PYTHONPATH=src python benchmarks/live_smoke_gate.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

TRACE = "skewed-frequency"
POLICY = "GD"
MEMORY_GB = "2"
LIMIT = "10000"
MAX_P99_MS = "5"
BASELINE = os.path.join(
    os.path.dirname(__file__), "BASELINE.json"
)
ANNOUNCE = re.compile(r"at http://([\d.]+):(\d+)")
STARTUP_TIMEOUT_S = 30.0


def main() -> int:
    env = dict(os.environ)
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--trace", TRACE,
            "--policy", POLICY,
            "--memory-gb", MEMORY_GB,
            "--port", "0",
            "--clock", "sim",
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        # The serve subcommand announces the resolved ephemeral port
        # on stderr once the socket is bound.
        assert server.stderr is not None
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        host = port = None
        while time.monotonic() < deadline:
            line = server.stderr.readline()
            if not line:
                break
            sys.stderr.write(f"[serve] {line}")
            match = ANNOUNCE.search(line)
            if match:
                host, port = match.group(1), match.group(2)
                break
        if port is None:
            print("FAIL: server never announced a port", file=sys.stderr)
            return 1

        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "loadgen",
                "--trace", TRACE,
                "--host", host,
                "--port", port,
                "--limit", LIMIT,
                "--check-consistency",
                "--max-p99-ms", MAX_P99_MS,
                "--calibration-baseline", BASELINE,
            ],
            env=env,
        )
        if result.returncode != 0:
            print("FAIL: loadgen gate failed", file=sys.stderr)
            return 1
        print("live-smoke gate passed")
        return 0
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main())

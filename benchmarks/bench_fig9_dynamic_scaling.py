"""Figure 9: dynamic cache-size adjustment via proportional control.

Regenerates the paper's Figure 9 experiment: the vertical-scaling
controller periodically (every 10 minutes) resizes the keep-alive
cache through the hit-ratio curve so the miss *speed* (cold starts per
second) tracks a target, with a 30% error deadband. Compared against
a conservative static provision, the controller cuts the average
cache size by ~30% while holding the miss speed near the target as
the diurnal load swings.
"""

from repro.analysis.reporting import format_series_table, format_table
from repro.provisioning.autoscale import AutoscaledSimulation
from repro.provisioning.controller import ProportionalController
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances

from conftest import write_result


def run_fig9(trace):
    curve = HitRatioCurve.from_distances(reuse_distances(trace))
    static_mb = curve.required_size(min(0.95, curve.max_hit_ratio))
    controller = ProportionalController.from_miss_ratio_target(
        curve,
        desired_miss_ratio=0.05,
        mean_arrival_rate=trace.arrival_rate(),
        initial_size_mb=static_mb,
        max_size_mb=static_mb,
        control_period_s=600.0,
        deadband=0.3,
    )
    result = AutoscaledSimulation(trace, controller, policy="GD").run()
    return result, static_mb


def test_fig9_dynamic_scaling(benchmark, paper_traces):
    trace = paper_traces["representative"]
    result, static_mb = benchmark.pedantic(
        run_fig9, args=(trace,), rounds=1, iterations=1
    )
    times = [d.time_s / 3600.0 for d in result.decisions]
    series = {
        "Size (MB)": [d.cache_size_mb for d in result.decisions],
        "MissSpeed (/s)": [d.miss_speed for d in result.decisions],
        "Target (/s)": [d.target_miss_speed for d in result.decisions],
    }
    timeline = format_series_table(
        "Hour", times, series,
        title="Figure 9: controller timeline (10-minute periods)",
    )
    summary = format_table(
        ["Static (MB)", "Mean dynamic (MB)", "Savings", "Resizes"],
        [[
            static_mb,
            result.mean_cache_size_mb,
            f"{result.savings_vs_static(static_mb):.1%}",
            sum(1 for d in result.decisions if d.resized),
        ]],
    )
    write_result("fig9.txt", timeline + "\n\n" + summary)

    # The paper's headline: ~30% average size reduction.
    assert result.savings_vs_static(static_mb) > 0.25
    # The cache never exceeds the static provision.
    assert result.max_cache_size_mb <= static_mb + 1e-6
    # Miss speed stays in the target's neighbourhood after warmup.
    steady = result.decisions[len(result.decisions) // 3 :]
    mean_miss = sum(d.miss_speed for d in steady) / len(steady)
    assert mean_miss < 10.0 * result.target_miss_speed

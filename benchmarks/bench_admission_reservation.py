"""Extension: admission control and provisioned concurrency.

Two mechanisms that bracket the keep-alive policy from opposite sides
(Section 3.1 motivates the first; the paper's introduction cites the
second as industry practice — AWS provisioned concurrency, Azure
warm-up triggers):

* **DOORKEEPER** refuses to cache functions until they prove
  themselves, protecting the working set from one-shot pollution.
* **Provisioned concurrency** pins containers for selected functions,
  guaranteeing warmth regardless of the policy — at a permanent
  memory cost to everyone else.

The workload interleaves an established working set with a stream of
one-shot functions (the rare tail every real FaaS server sees).
"""

from repro.analysis.reporting import format_table
from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction

from conftest import write_result

MEMORY_MB = 1200.0


def build_workload():
    working = [TraceFunction(f"w{i}", 200.0, 1.0, 4.0) for i in range(5)]
    one_shots = [TraceFunction(f"s{i}", 200.0, 1.0, 4.0) for i in range(120)]
    invocations = []
    t = 0.0
    for round_ in range(24):
        for f in working:
            invocations.append(Invocation(t, f.name))
            t += 2.0
        for f in one_shots[round_ * 5 : (round_ + 1) * 5]:
            invocations.append(Invocation(t, f.name))
            t += 2.0
    return Trace(working + one_shots, invocations, name="scan-mix"), working


def run_all():
    trace, working = build_workload()
    configs = {
        "GD": (create_policy("GD"), None),
        "DOORKEEPER(GD)": (create_policy("DOORKEEPER", inner="GD"), None),
        "GD + reserve w0/w1": (
            create_policy("GD"),
            {"w0": 1, "w1": 1},
        ),
    }
    rows = []
    for label, (policy, reserved) in configs.items():
        sim = KeepAliveSimulator(
            trace, policy, MEMORY_MB, reserved_concurrency=reserved
        )
        metrics = sim.run().metrics
        working_warm = sum(
            metrics.per_function[f.name].warm for f in working
        )
        rows.append(
            [
                label,
                working_warm,
                metrics.warm_starts,
                metrics.cold_starts,
                metrics.exec_time_increase_pct,
            ]
        )
    return rows


def test_admission_reservation(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["Configuration", "Working-set warm", "Warm", "Cold", "Exec incr. %"],
        rows,
        title=(
            f"Admission control and reservations under one-shot "
            f"pollution ({MEMORY_MB:.0f} MB)"
        ),
    )
    write_result("admission_reservation.txt", text)

    by_label = {row[0]: row for row in rows}
    # The doorkeeper protects the working set against the scan...
    assert (
        by_label["DOORKEEPER(GD)"][1] > by_label["GD"][1]
    )
    # ...and reservations guarantee at least the reserved functions.
    assert by_label["GD + reserve w0/w1"][1] >= by_label["GD"][1]
    # Overall execution-time inflation improves with the doorkeeper.
    assert by_label["DOORKEEPER(GD)"][4] < by_label["GD"][4]

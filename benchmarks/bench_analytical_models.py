"""Extension: analytical cache models vs the simulator.

Section 2.2 cites Che's approximation among the analytical tools the
caching analogy unlocks, and Section 7.1 explains Figure 5c through
the known TTL/LRU equivalence for rare objects. This benchmark
validates both quantitatively against the discrete-event simulator on
a Poisson workload:

* Che's approximation predicts the simulated LRU hit ratio across
  cache sizes;
* the TTL model predicts the simulated TTL hit ratio;
* a TTL of the characteristic time T_C reproduces the LRU cache of
  the corresponding size.
"""

import random

from repro.analysis.reporting import format_table
from repro.provisioning.analytical import (
    equivalent_ttl,
    lru_hit_ratio,
    models_from_trace,
    ttl_hit_ratio,
)
from repro.sim.scheduler import simulate
from repro.traces.model import Trace, TraceFunction
from repro.traces.synth import periodic_arrivals

from conftest import write_result


def poisson_workload(num_functions=60, duration_s=40_000.0, seed=11):
    rng = random.Random(seed)
    functions, invocations = [], []
    for i in range(num_functions):
        rate = 10 ** rng.uniform(-3.2, -1.0)
        size = rng.choice([64.0, 128.0, 256.0, 512.0, 1024.0])
        f = TraceFunction(f"f{i}", size, 1e-3, 2e-3)
        functions.append(f)
        invocations += periodic_arrivals(
            f.name, 1.0 / rate, duration_s, jitter=1.0, rng=rng
        )
    return Trace(functions, invocations, name="poisson")


def run_validation():
    trace = poisson_workload()
    models = models_from_trace(trace)
    working_set = sum(m.size_mb for m in models)
    rows = []
    for fraction in (0.25, 0.4, 0.55, 0.7, 0.85):
        cache = fraction * working_set
        che = lru_hit_ratio(models, cache)
        lru_sim = simulate(trace, "LRU", cache).metrics.hit_ratio
        t_c = equivalent_ttl(models, cache)
        ttl_sim = simulate(
            trace, "TTL", 10 * working_set, ttl_s=t_c
        ).metrics.hit_ratio
        ttl_model = ttl_hit_ratio(models, t_c)
        rows.append(
            [fraction, cache / 1024.0, che, lru_sim, t_c, ttl_model, ttl_sim]
        )
    return rows


def test_analytical_models(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    text = format_table(
        [
            "WS frac",
            "Cache (GB)",
            "Che HR",
            "LRU sim HR",
            "T_C (s)",
            "TTL model HR",
            "TTL sim HR",
        ],
        rows,
        title="Che's approximation and TTL/LRU equivalence vs simulation",
    )
    write_result("analytical_models.txt", text)
    for row in rows:
        __, __, che, lru_sim, __, ttl_model, ttl_sim = row
        assert abs(che - lru_sim) < 0.08
        assert abs(ttl_model - ttl_sim) < 0.08
        assert abs(lru_sim - ttl_sim) < 0.08  # the equivalence itself

"""Ablation: the eviction slow path — per-need vs batched vs async.

Section 6 of the paper motivates two implementation choices around
eviction: the ContainerPool is sorted only during evictions, and
evictions are *batched* to a free-memory threshold to keep the slow
path off the invocation critical path; a kswapd-style asynchronous
eviction thread is sketched as future work. This ablation isolates the
effect on a uniform-size eviction-bound workload, where hit behaviour
is identical across variants and only the charged eviction latency
differs:

* ``per-need`` — evict exactly what the cold start needs, charging
  the full slow path to every eviction-bound cold start (vanilla
  OpenWhisk's behaviour).
* ``batched`` — evict to the free threshold, amortizing the fixed
  round cost across subsequent cold starts (FaasCache).
* ``async`` — background reclaim; cold starts pay no eviction latency
  at all (the future-work design).
"""

from repro.analysis.reporting import format_table
from repro.openwhisk.invoker import InvokerConfig, SimulatedInvoker
from repro.traces.synth import cyclic_trace

from conftest import write_result

BASE = dict(
    memory_mb=1664.0,
    cpu_cores=8,
    eviction_event_latency_s=1.0,
    eviction_per_container_s=0.5,
)

VARIANTS = {
    "per-need": dict(free_threshold_mb=0.0),
    "batched": dict(free_threshold_mb=512.0),
    "async": dict(free_threshold_mb=512.0, async_reclaim=True),
}


def run_ablation():
    trace = cyclic_trace(
        num_functions=12,
        cycle_gap_s=2.0,
        num_cycles=200,
        memory_choices_mb=(256.0,),
        init_choices_s=(2.0,),
    )
    results = {}
    for name, overrides in VARIANTS.items():
        invoker = SimulatedInvoker(
            InvokerConfig(**BASE, **overrides), policy="GD"
        )
        result = invoker.run(trace)
        results[name] = (result, invoker.pool)
    return results


def test_ablation_eviction_batching(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for name, (result, pool) in results.items():
        rows.append(
            [
                name,
                result.cold_starts,
                pool.eviction_events,
                pool.background_evictions,
                result.mean_latency_s(),
            ]
        )
    text = format_table(
        ["Variant", "Cold", "Sync evict rounds", "Bg evictions", "Mean lat (s)"],
        rows,
        title="Eviction slow-path ablation (uniform cyclic, eviction-bound)",
    )
    write_result("ablation_eviction_batching.txt", text)

    per_need = results["per-need"][0]
    batched = results["batched"][0]
    async_ = results["async"][0]
    # Same hit behaviour (uniform sizes) across variants...
    assert per_need.cold_starts == batched.cold_starts == async_.cold_starts
    # ...so latency differences are pure slow-path effects, in the
    # order the paper's design narrative predicts.
    assert batched.mean_latency_s() < per_need.mean_latency_s()
    assert async_.mean_latency_s() < batched.mean_latency_s()
    # Batching makes synchronous eviction rounds rarer.
    assert (
        results["batched"][1].eviction_events
        < results["per-need"][1].eviction_events
    )

"""Figure 1: timeline of cold-start delay for an ML-inference function.

Regenerates the phase breakdown of a cold OpenWhisk invocation —
container-pool check, Docker startup, runtime init, explicit function
init, execution — for the Table 1 ML-inference application, and the
warm timeline for contrast.
"""

from repro.analysis.reporting import format_bar_chart, format_table
from repro.openwhisk.latency import ColdStartModel
from repro.traces.functionbench import functionbench_app

from conftest import write_result


def build_figure1() -> str:
    model = ColdStartModel()
    cnn = functionbench_app("ml-inference-cnn")
    cold = model.cold_breakdown(cnn)
    warm = model.warm_breakdown(cnn)
    chart = format_bar_chart(
        [name for name, __ in cold.phases],
        [duration for __, duration in cold.phases],
        title=(
            "Figure 1: cold-start timeline, ML inference "
            f"(total {cold.total_s:.2f} s)"
        ),
    )
    table = format_table(
        ["Path", "Total (s)", "Overhead (s)"],
        [
            ["cold", cold.total_s, cold.overhead_s],
            ["warm", warm.total_s, warm.overhead_s],
        ],
    )
    return chart + "\n\n" + table


def test_fig1_coldstart_timeline(benchmark):
    text = benchmark(build_figure1)
    write_result("fig1.txt", text)
    model = ColdStartModel()
    cnn = functionbench_app("ml-inference-cnn")
    cold = model.cold_breakdown(cnn)
    # The paper: ~2 s of compulsory platform overhead before user
    # code, ~8 s total for the ML-inference cold path.
    assert 1.5 <= model.platform_overhead_s <= 3.0
    assert 7.0 <= cold.total_s <= 10.0
    # Warm path is dominated by execution, not overhead.
    warm = model.warm_breakdown(cnn)
    assert warm.overhead_s < 0.1 * warm.total_s

"""Extension: horizontal cluster scaling under the diurnal day.

Composes the keep-alive cluster with AutoScale-style server-count
scaling on the representative trace (whose diurnal arrival swing the
generator reproduces). Reports the server-count timeline, the
server-seconds consumed vs a statically peak-provisioned cluster, and
the keep-alive cost of elasticity: every scale-down discards warm
containers, so cold starts rise relative to a static cluster of the
same peak size.
"""

from repro.analysis.reporting import format_series_table, format_table
from repro.cluster.elastic import ElasticClusterSimulation
from repro.cluster.simulation import ClusterSimulator

from conftest import write_result

SERVER_MEMORY_MB = 6.0 * 1024.0
MAX_SERVERS = 6
REQS_PER_SERVER = 0.15  # representative trace averages ~0.4 req/s


def run_elastic(trace):
    elastic = ElasticClusterSimulation(
        trace,
        server_memory_mb=SERVER_MEMORY_MB,
        min_servers=1,
        max_servers=MAX_SERVERS,
        requests_per_server_per_s=REQS_PER_SERVER,
        control_period_s=1800.0,
        scale_down_hold_s=3600.0,
    ).run()
    peak = max(n for __, n in elastic.server_timeline)
    static = ClusterSimulator(
        trace,
        "hash-affinity",
        num_servers=peak,
        server_memory_mb=SERVER_MEMORY_MB,
    ).run()
    return elastic, static, peak


def test_elastic_cluster(benchmark, paper_traces):
    trace = paper_traces["representative"]
    elastic, static, peak = benchmark.pedantic(
        run_elastic, args=(trace,), rounds=1, iterations=1
    )
    hours = [t / 3600.0 for t, __ in elastic.server_timeline]
    timeline = format_series_table(
        "Hour",
        hours,
        {"Servers": [float(n) for __, n in elastic.server_timeline]},
        title="Elastic cluster: active servers over the day",
    )
    duration = trace.duration_s
    summary = format_table(
        ["Cluster", "Mean servers", "Server-hours", "Cold %", "Dropped"],
        [
            [
                "elastic",
                elastic.mean_servers,
                elastic.server_seconds / 3600.0,
                elastic.cold_start_pct,
                elastic.dropped,
            ],
            [
                f"static x{peak}",
                float(peak),
                peak * duration / 3600.0,
                static.cold_start_pct,
                static.dropped,
            ],
        ],
    )
    write_result("elastic_cluster.txt", timeline + "\n\n" + summary)

    # Elasticity saves server-hours vs peak provisioning...
    assert elastic.server_seconds < peak * duration
    # ...and both serve everything (no overload in this regime).
    assert elastic.served + elastic.dropped == len(trace)
    # The cluster actually breathed with the diurnal swing.
    counts = [n for __, n in elastic.server_timeline]
    assert max(counts) > min(counts)

"""Figure 3: hit-ratio curve from reuse distances vs observed ratios.

Regenerates the paper's Figure 3: the hit-ratio curve predicted from
size-weighted reuse distances (Equation 2) against the hit ratios a
Greedy-Dual keep-alive simulation actually observes at each cache
size. Deviations at small sizes come from dropped requests, at large
sizes from concurrent executions — the paper's "Limitations of the
Caching Analogy".
"""

from repro.analysis.curves import figure3_data
from repro.analysis.reporting import format_series_table

from conftest import write_result

CACHE_SIZES_GB = [2.0, 4.0, 6.0, 8.0, 10.0, 12.5, 15.0, 17.5]


def build_figure3(trace):
    return figure3_data(trace, CACHE_SIZES_GB)


def test_fig3_hit_ratio_curve(benchmark, paper_traces):
    trace = paper_traces["representative"]
    data = benchmark.pedantic(
        build_figure3, args=(trace,), rounds=1, iterations=1
    )
    text = format_series_table(
        "Cache (GB)",
        data.cache_sizes_gb,
        {"ReuseDist": data.predicted, "GreedyDual": data.observed},
        title="Figure 3: hit-ratio curve, reuse-distance prediction vs observed",
    )
    write_result("fig3.txt", text)
    # Both curves rise with cache size.
    assert data.predicted == sorted(data.predicted)
    # The prediction tracks the observation but is not exact.
    assert data.max_deviation() < 0.3
    # The curve is long-tailed: most of the hit ratio arrives early.
    mid = data.predicted[len(data.predicted) // 2]
    assert mid > 0.6 * data.predicted[-1]

"""Extension: the colocation tradeoff frontier (Section 9).

"Our provisioning policies can provide a principled way to examine
these tradeoffs" — function performance vs the memory colocated
applications consume, with the hit-ratio curve as the model. This
benchmark sweeps static colocated demand levels on the representative
trace and prints measured cold-start ratios next to the
hit-ratio-curve prediction, plus a dynamic scenario where a colocated
VM's demand spikes mid-day and cascade deflation squeezes the cache.
"""

from repro.analysis.reporting import format_table
from repro.provisioning.colocation import (
    ColocatedDemand,
    ColocationSimulation,
    tradeoff_curve,
)

from conftest import write_result

SERVER_GB = 32.0


def run_tradeoff(trace):
    server_mb = SERVER_GB * 1024.0
    levels = [0.0, 0.25, 0.5, 0.625, 0.75]
    static_rows = tradeoff_curve(
        trace,
        server_memory_mb=server_mb,
        colocated_levels_mb=[f * server_mb for f in levels],
    )
    # Dynamic scenario: a colocated VM grows from 4 GB to 20 GB for
    # the middle third of the day, then releases.
    day = trace.duration_s
    demand = ColocatedDemand(
        [
            (0.0, 4.0 * 1024.0),
            (day / 3.0, 20.0 * 1024.0),
            (2.0 * day / 3.0, 4.0 * 1024.0),
        ]
    )
    dynamic = ColocationSimulation(
        trace, demand, server_memory_mb=server_mb, policy="GD"
    ).run()
    return static_rows, dynamic


def test_colocation_tradeoff(benchmark, paper_traces):
    trace = paper_traces["representative"]
    static_rows, dynamic = benchmark.pedantic(
        run_tradeoff, args=(trace,), rounds=1, iterations=1
    )
    table = format_table(
        ["Colocated (GB)", "Cold ratio (sim)", "Miss ratio (curve)"],
        [[mb / 1024.0, cold, miss] for mb, cold, miss in static_rows],
        title=f"Colocation frontier on a {SERVER_GB:.0f} GB server",
    )
    dyn = format_table(
        ["Cold %", "Dropped", "Deflations", "Deflation latency (s)"],
        [[
            dynamic.metrics.cold_start_pct,
            dynamic.metrics.dropped,
            len(dynamic.deflations),
            dynamic.total_deflation_latency_s,
        ]],
        title="Dynamic colocated spike (4 GB -> 20 GB -> 4 GB)",
    )
    write_result("colocation_tradeoff.txt", table + "\n\n" + dyn)

    # More colocation, worse function performance — monotone frontier.
    cold_ratios = [cold for __, cold, __ in static_rows]
    assert all(a <= b + 1e-9 for a, b in zip(cold_ratios, cold_ratios[1:]))
    # The hit-ratio curve tracks the measured frontier.
    for __, cold, predicted in static_rows:
        assert abs(cold - predicted) < 0.15
    # The dynamic squeeze actually actuated (spike and release).
    assert len(dynamic.deflations) == 2

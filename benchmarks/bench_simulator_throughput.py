"""Harness health: raw simulator throughput per policy.

Not a paper artefact — a performance-regression guard for the
substrate itself. The original authors note their simulation is
"compute-intensive (i.e. slow)"; this benchmark tracks how many
invocations per second each policy sustains in our implementation, so
a future change that accidentally makes victim selection quadratic
shows up here instead of as a mysteriously slow Figure 5 sweep.

Two configurations:

* the **multitenant** workload — the moderate-pool regime of the
  figure sweeps, guarded by an absolute invocations/second floor;
* the **eviction-heavy** workload — a working set far above capacity
  cycling through a large idle pool, where every arrival is a miss
  that must select a victim. Here the pool's lazy victim index
  (:meth:`ContainerPool.iter_victims`) is required to beat the
  sort-every-miss path by a healthy margin.

Unlike the figure benches (single-shot ``pedantic`` runs), these use
pytest-benchmark's normal repeated timing; the index-vs-sort ratio is
measured with best-of-N wall clocks since it compares two variants in
one test.
"""

import random
import time

import pytest

from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import multitenant_trace

TRACE = multitenant_trace(duration_s=900.0, num_tenants=24)
MEMORY_MB = 4096.0


def replay(policy_name):
    sim = KeepAliveSimulator(TRACE, create_policy(policy_name), MEMORY_MB)
    return sim.run()


@pytest.mark.parametrize("policy", ["GD", "TTL", "LRU", "HIST", "ARC", "LND"])
def test_simulator_throughput(benchmark, policy):
    result = benchmark(replay, policy)
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(TRACE)
    # Guard: the simulator must stay above 10k invocations/second for
    # every policy (typical rates are far higher). Skipped under
    # --benchmark-disable, where no timings are collected.
    if benchmark.stats is not None:
        seconds_per_run = benchmark.stats.stats.mean
        rate = len(TRACE) / seconds_per_run
        assert rate > 10_000, f"{policy}: {rate:.0f} inv/s"


# ----------------------------------------------------------------------
# Eviction-heavy configuration: the victim-index regime
# ----------------------------------------------------------------------

#: 800 functions x 128 MB = a 100 GB working set against 24 GB of
#: memory (~190 idle slots). Shuffled round-robin arrivals make nearly
#: every invocation a cold start that evicts from a large idle pool.
EVICTION_HEAVY_MEMORY_MB = 24.0 * 1024.0


def _eviction_heavy_trace(
    num_functions: int = 800,
    memory_mb: float = 128.0,
    rounds: int = 25,
    seed: int = 5,
) -> Trace:
    functions = [
        TraceFunction(f"f{i:03d}", memory_mb, 0.2, 1.0)
        for i in range(num_functions)
    ]
    rng = random.Random(seed)
    invocations = []
    t = 0.0
    for _ in range(rounds):
        order = list(range(num_functions))
        rng.shuffle(order)
        for i in order:
            invocations.append(Invocation(t, f"f{i:03d}"))
            t += 0.05
    return Trace(functions, invocations, name="eviction-heavy")


EVICTION_HEAVY_TRACE = _eviction_heavy_trace()


def _churn_rate(use_index: bool, repeats: int = 3) -> float:
    """Best-of-N invocations/second for GD on the churn workload."""
    best = float("inf")
    for _ in range(repeats):
        policy = create_policy("GD")
        if not use_index:
            # Instance-level override forces the exact sort-every-miss
            # path; victim choices are identical either way.
            policy.monotone_priority = False
        sim = KeepAliveSimulator(
            EVICTION_HEAVY_TRACE, policy, EVICTION_HEAVY_MEMORY_MB
        )
        started = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - started)
    return len(EVICTION_HEAVY_TRACE) / best


def test_eviction_heavy_throughput(benchmark):
    result = benchmark(
        lambda: KeepAliveSimulator(
            EVICTION_HEAVY_TRACE, create_policy("GD"), EVICTION_HEAVY_MEMORY_MB
        ).run()
    )
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(EVICTION_HEAVY_TRACE)
    # The workload must actually exercise victim selection.
    assert metrics.evictions > len(EVICTION_HEAVY_TRACE) * 0.9


def test_victim_index_speedup():
    """The lazy index must beat sorting every idle container per miss
    by >= 1.5x on the eviction-heavy configuration (locally ~3x)."""
    indexed = _churn_rate(use_index=True)
    legacy = _churn_rate(use_index=False)
    ratio = indexed / legacy
    assert ratio >= 1.5, (
        f"victim index {indexed:,.0f} inv/s vs sort {legacy:,.0f} inv/s "
        f"(ratio {ratio:.2f}x, expected >= 1.5x)"
    )

"""Harness health: raw simulator throughput per policy.

Not a paper artefact — a performance-regression guard for the
substrate itself. The original authors note their simulation is
"compute-intensive (i.e. slow)"; this benchmark tracks how many
invocations per second each policy sustains in our implementation, so
a future change that accidentally makes victim selection quadratic
shows up here instead of as a mysteriously slow Figure 5 sweep.

Unlike the figure benches (single-shot ``pedantic`` runs), these use
pytest-benchmark's normal repeated timing.
"""

import pytest

from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.synth import multitenant_trace

TRACE = multitenant_trace(duration_s=900.0, num_tenants=24)
MEMORY_MB = 4096.0


def replay(policy_name):
    sim = KeepAliveSimulator(TRACE, create_policy(policy_name), MEMORY_MB)
    return sim.run()


@pytest.mark.parametrize("policy", ["GD", "TTL", "LRU", "HIST", "ARC", "LND"])
def test_simulator_throughput(benchmark, policy):
    result = benchmark(replay, policy)
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(TRACE)
    # Guard: the simulator must stay above 10k invocations/second for
    # every policy (typical rates are far higher).
    seconds_per_run = benchmark.stats.stats.mean
    rate = len(TRACE) / seconds_per_run
    assert rate > 10_000, f"{policy}: {rate:.0f} inv/s"

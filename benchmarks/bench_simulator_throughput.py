"""Harness health: raw simulator throughput per policy.

Not a paper artefact — a performance-regression guard for the
substrate itself. The original authors note their simulation is
"compute-intensive (i.e. slow)"; this benchmark tracks how many
invocations per second each policy sustains in our implementation, so
a future change that accidentally makes victim selection quadratic
shows up here instead of as a mysteriously slow Figure 5 sweep.

Two configurations:

* the **multitenant** workload — the moderate-pool regime of the
  figure sweeps, guarded by an absolute invocations/second floor;
* the **eviction-heavy** workload — a working set far above capacity
  cycling through a large idle pool, where every arrival is a miss
  that must select a victim. Here the pool's lazy victim index
  (:meth:`ContainerPool.iter_victims`) is required to beat the
  sort-every-miss path by a healthy margin.

Unlike the figure benches (single-shot ``pedantic`` runs), these use
pytest-benchmark's normal repeated timing; the index-vs-sort ratio is
measured with best-of-N wall clocks since it compares two variants in
one test.
"""

import heapq
import random
import time
from bisect import insort

import pytest

from repro.core.container import Container, ContainerState
from repro.core.pool import _UNSCORED_KEY, CapacityError, ContainerPool
from repro.core.policies import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.synth import multitenant_trace

TRACE = multitenant_trace(duration_s=900.0, num_tenants=24)
MEMORY_MB = 4096.0


def replay(policy_name):
    sim = KeepAliveSimulator(TRACE, create_policy(policy_name), MEMORY_MB)
    return sim.run()


@pytest.mark.parametrize("policy", ["GD", "TTL", "LRU", "HIST", "ARC", "LND"])
def test_simulator_throughput(benchmark, policy):
    result = benchmark(replay, policy)
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(TRACE)
    # Guard: the simulator must stay above 10k invocations/second for
    # every policy (typical rates are far higher). Skipped under
    # --benchmark-disable, where no timings are collected.
    if benchmark.stats is not None:
        seconds_per_run = benchmark.stats.stats.mean
        rate = len(TRACE) / seconds_per_run
        assert rate > 10_000, f"{policy}: {rate:.0f} inv/s"


# ----------------------------------------------------------------------
# Eviction-heavy configuration: the victim-index regime
# ----------------------------------------------------------------------

#: 800 functions x 128 MB = a 100 GB working set against 24 GB of
#: memory (~190 idle slots). Shuffled round-robin arrivals make nearly
#: every invocation a cold start that evicts from a large idle pool.
EVICTION_HEAVY_MEMORY_MB = 24.0 * 1024.0


def _eviction_heavy_trace(
    num_functions: int = 800,
    memory_mb: float = 128.0,
    rounds: int = 25,
    seed: int = 5,
) -> Trace:
    functions = [
        TraceFunction(f"f{i:03d}", memory_mb, 0.2, 1.0)
        for i in range(num_functions)
    ]
    rng = random.Random(seed)
    invocations = []
    t = 0.0
    for _ in range(rounds):
        order = list(range(num_functions))
        rng.shuffle(order)
        for i in order:
            invocations.append(Invocation(t, f"f{i:03d}"))
            t += 0.05
    return Trace(functions, invocations, name="eviction-heavy")


EVICTION_HEAVY_TRACE = _eviction_heavy_trace()


def _churn_rate(use_index: bool, repeats: int = 3) -> float:
    """Best-of-N invocations/second for GD on the churn workload."""
    best = float("inf")
    for _ in range(repeats):
        policy = create_policy("GD")
        if not use_index:
            # Instance-level override forces the exact sort-every-miss
            # path; victim choices are identical either way.
            policy.monotone_priority = False
        sim = KeepAliveSimulator(
            EVICTION_HEAVY_TRACE, policy, EVICTION_HEAVY_MEMORY_MB
        )
        started = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - started)
    return len(EVICTION_HEAVY_TRACE) / best


def test_eviction_heavy_throughput(benchmark):
    result = benchmark(
        lambda: KeepAliveSimulator(
            EVICTION_HEAVY_TRACE, create_policy("GD"), EVICTION_HEAVY_MEMORY_MB
        ).run()
    )
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(EVICTION_HEAVY_TRACE)
    # The workload must actually exercise victim selection.
    assert metrics.evictions > len(EVICTION_HEAVY_TRACE) * 0.9


def test_victim_index_speedup():
    """The lazy index must beat sorting every idle container per miss
    by >= 1.5x on the eviction-heavy configuration (locally ~3x)."""
    indexed = _churn_rate(use_index=True)
    legacy = _churn_rate(use_index=False)
    ratio = indexed / legacy
    assert ratio >= 1.5, (
        f"victim index {indexed:,.0f} inv/s vs sort {legacy:,.0f} inv/s "
        f"(ratio {ratio:.2f}x, expected >= 1.5x)"
    )


# ----------------------------------------------------------------------
# Disabled-instrumentation overhead: the null fast paths
# ----------------------------------------------------------------------
#
# The repro.obs instrumentation must be free when off: with no tracer
# the hot path pays only ``is None`` tests. The same budget covers the
# repro.faults layer — with no fault spec the hot path pays one
# ``self._faults is not None`` and one ``self._down`` bool test per
# invocation. The baseline below is a frozen copy of the
# pre-observability, pre-fault hot-path methods (every tracer line and
# fault guard deleted); running both variants interleaved and comparing
# best-of-N wall clocks measures exactly what the emission-site and
# fault guards cost together. A metrics-identity assertion keeps the
# frozen copy honest — if the real hot path changes behaviour, the
# copy must be re-frozen.

OVERHEAD_BUDGET_PCT = 2.0


class _UntracedPool(ContainerPool):
    """ContainerPool.add without the spawn-event emission branch."""

    def add(self, container):
        if container.state == ContainerState.DEAD:
            raise ValueError("cannot add a dead container")
        if container.container_id in self._containers:
            raise ValueError(
                f"container {container.container_id} already pooled"
            )
        if not self.can_fit(container.memory_mb):
            raise CapacityError(
                f"container needs {container.memory_mb} MB but only "
                f"{self.free_mb:.1f} MB is free"
            )
        if container.pool is not None:
            raise ValueError(
                f"container {container.container_id} already belongs "
                "to a pool"
            )
        container.pool = self
        self._containers[container.container_id] = container
        peers = self._by_function.setdefault(container.function.name, [])
        if peers and container.container_id < peers[-1]:
            insort(peers, container.container_id)
        else:
            peers.append(container.container_id)
        self._used_mb += container.memory_mb
        if not container.pinned:
            heapq.heappush(
                self._victim_heap, (_UNSCORED_KEY, container.container_id)
            )
            self._unscheduled[container.container_id] = container
            if container.is_idle:
                self._evictable_mb += container.memory_mb
                self._idle_unpinned += 1
        if self._sanitize:
            self._sanitize_accounting()


class _UntracedSimulator(KeepAliveSimulator):
    """KeepAliveSimulator with every emission site stripped out."""

    def __init__(self, trace, policy, memory_mb):
        super().__init__(trace, policy, memory_mb)
        self.pool = _UntracedPool(memory_mb)

    def _release_finished(self, now_s):
        while self._running and self._running[0][0] <= now_s:
            finish_s, __, container = heapq.heappop(self._running)
            container.finish_invocation(finish_s)
            if container.pinned:
                continue
            if not self.policy.should_retain(container, finish_s, self.pool):
                self.pool.evict(container)
                self.policy.on_evict(
                    container, finish_s, self.pool, pressure=False
                )
                self.metrics.expirations += 1

    def _expire_containers(self, now_s):
        for container, __ in self.policy.expired_containers(self.pool, now_s):
            self.pool.evict(container)
            self.policy.on_evict(container, now_s, self.pool, pressure=False)
            self.metrics.expirations += 1

    def _evict_for(self, needed_mb, now_s):
        victims = self.policy.select_victims(self.pool, needed_mb, now_s)
        if victims is None:
            return False
        for container in victims:
            self.pool.evict(container)
            self.policy.on_evict(container, now_s, self.pool, pressure=True)
            self.metrics.evictions += 1
        return True

    def process_invocation(self, function, now_s):
        self._release_finished(now_s)
        self._expire_containers(now_s)
        self._materialize_prewarms(now_s)
        self.policy.on_invocation(function, now_s, self.pool)

        container = self.pool.idle_warm_container(function.name)
        if container is not None:
            duration = function.warm_time_s
            if container.prewarmed and container.invocation_count == 0:
                duration += (
                    (1.0 - self.prewarm_effectiveness) * function.init_time_s
                )
            container.start_invocation(now_s, duration)
            heapq.heappush(
                self._running,
                (container.busy_until_s, container.container_id, container),
            )
            self.policy.on_warm_start(container, now_s, self.pool)
            if now_s >= self.warmup_s:
                self.metrics.record_warm(
                    function.name, function.warm_time_s, actual_time_s=duration
                )
            self._sample_memory(now_s)
            return "warm"

        if not self._evict_for(function.memory_mb, now_s):
            if now_s >= self.warmup_s:
                self.metrics.record_dropped(function.name)
            self._sample_memory(now_s)
            return "dropped"

        container = Container(function, created_at_s=now_s)
        self.pool.add(container)
        container.start_invocation(now_s, function.cold_time_s)
        heapq.heappush(
            self._running,
            (container.busy_until_s, container.container_id, container),
        )
        self.policy.on_cold_start(container, now_s, self.pool)
        if now_s >= self.warmup_s:
            self.metrics.record_cold(
                function.name, function.warm_time_s, function.cold_time_s
            )
        self._sample_memory(now_s)
        return "cold"


def _timed_batch(simulator_cls, batch=3):
    """Wall-clock seconds for ``batch`` back-to-back GD replays."""
    sims = [
        simulator_cls(TRACE, create_policy("GD"), MEMORY_MB)
        for __ in range(batch)
    ]
    started = time.perf_counter()
    for sim in sims:
        sim.run()
    return time.perf_counter() - started


def measure_disabled_overhead_pct(repeats=15, batch=3):
    """Overhead of the (disabled) instrumentation, in percent.

    Robust to the frequency drift of shared CI machines: the two
    variants run back-to-back as a pair (order alternating each
    repeat), each pair yields an instrumented/baseline ratio, and the
    median ratio over all pairs is reported. Adjacent-in-time pairing
    cancels slow machine phases; the median discards the pairs a
    scheduler hiccup landed in. Can be slightly negative — noise
    around a true cost near zero.
    """
    import statistics

    ratios = []
    for i in range(repeats):
        if i % 2 == 0:
            base = _timed_batch(_UntracedSimulator, batch)
            inst = _timed_batch(KeepAliveSimulator, batch)
        else:
            inst = _timed_batch(KeepAliveSimulator, batch)
            base = _timed_batch(_UntracedSimulator, batch)
        ratios.append(inst / base)
    return 100.0 * (statistics.median(ratios) - 1.0)


def test_untraced_baseline_identical():
    """The frozen baseline must replay bit-identically to the real
    hot path, otherwise the overhead comparison measures behaviour
    drift instead of instrumentation cost."""
    real = KeepAliveSimulator(TRACE, create_policy("GD"), MEMORY_MB).run()
    frozen = _UntracedSimulator(TRACE, create_policy("GD"), MEMORY_MB).run()
    assert real.metrics.summary() == frozen.metrics.summary()
    assert real.metrics.counters() == frozen.metrics.counters()


def test_tracing_disabled_overhead():
    """Disabled tracing *and* disabled fault injection together must
    cost < 2% throughput on the multitenant configuration (the frozen
    baseline predates both layers). Re-measures on failure: the gate
    is tight enough that a single noisy best-of-N can spuriously trip
    it."""
    pct = None
    for __ in range(3):
        pct = measure_disabled_overhead_pct()
        if pct <= OVERHEAD_BUDGET_PCT:
            break
    assert pct <= OVERHEAD_BUDGET_PCT, (
        f"disabled tracing costs {pct:.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.1f}%)"
    )

"""Figure 8: per-function warm/cold/dropped breakdown on one server.

Regenerates the paper's Figure 8 experiment: the four Table 1
applications at the paper's inter-arrival times (floating point every
400 ms; CNN, disk-bench, web-serving every 1500 ms) on a shared
invoker for two hours. As in any real deployment — and per the
paper's Section 3.1 — the invoker concurrently hosts other tenants'
functions, which supply the memory pressure under which keep-alive
choices matter.

Expected shapes: FaasCache drops several-fold fewer requests, serves
more total invocations, improves mean application latency, and keeps
the high-init-cost floating-point function's hit ratio at least as
high as vanilla OpenWhisk's.
"""

from repro.analysis.reporting import format_table
from repro.openwhisk.invoker import InvokerConfig
from repro.openwhisk.loadgen import compare_keepalive_systems
from repro.traces.synth import multitenant_trace

from conftest import write_result

CONFIG = InvokerConfig(
    memory_mb=12_288.0,  # ContainerPool user-memory share of the server
    cpu_cores=16,
    request_timeout_s=20.0,
    max_concurrent_launches=4,
)

FOREGROUND = (
    "floating-point",
    "web-serving",
    "disk-bench-dd",
    "ml-inference-cnn",
)


def run_fig8():
    trace = multitenant_trace(duration_s=7200.0)
    return compare_keepalive_systems(trace, CONFIG)


def test_fig8_server_breakdown(benchmark):
    cmp = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    ow, fc = cmp.openwhisk, cmp.faascache
    rows = [
        ["OpenWhisk", ow.warm_starts, ow.cold_starts, ow.dropped,
         ow.mean_latency_s(), ow.percentile_latency_s(99.0),
         ow.mean_queue_wait_s()],
        ["FaasCache", fc.warm_starts, fc.cold_starts, fc.dropped,
         fc.mean_latency_s(), fc.percentile_latency_s(99.0),
         fc.mean_queue_wait_s()],
    ]
    summary = format_table(
        ["System", "Warm", "Cold", "Dropped", "Mean lat (s)", "p99 (s)",
         "Queue wait (s)"],
        rows,
        title="Figure 8: request breakdown on a shared 16-core server",
    )
    fn_rows = []
    ow_fn, fc_fn = ow.per_function(), fc.per_function()
    for name in FOREGROUND:
        fn_rows.append(
            [
                name,
                ow_fn[name].warm,
                ow_fn[name].dropped,
                ow.function_hit_ratio(name),
                fc_fn[name].warm,
                fc_fn[name].dropped,
                fc.function_hit_ratio(name),
            ]
        )
    detail = format_table(
        ["Function", "OW warm", "OW drop", "OW hit", "FC warm", "FC drop", "FC hit"],
        fn_rows,
        title="Figure 8 detail: foreground functions",
    )
    write_result("fig8.txt", summary + "\n\n" + detail)

    # FaasCache drops far fewer requests and serves more in total.
    assert fc.dropped < 0.6 * ow.dropped
    assert fc.served > ow.served
    # Latency improves.
    assert fc.mean_latency_s() <= ow.mean_latency_s()
    # The high-init floating-point function stays at least as warm.
    assert (
        fc.function_hit_ratio("floating-point")
        >= ow.function_hit_ratio("floating-point") - 0.01
    )

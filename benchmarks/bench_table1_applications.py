"""Table 1: FaaS application diversity (memory, run time, init time).

Regenerates the paper's Table 1 from the FunctionBench application
models, including the derived warm time and the init-to-total ratio
the paper highlights ("initialization overhead can be as much as 80%
of the total running time").
"""

from repro.analysis.reporting import format_table
from repro.traces.functionbench import functionbench_apps

from conftest import write_result


def build_table1() -> str:
    rows = []
    for name, app in functionbench_apps().items():
        rows.append(
            [
                name,
                app.memory_mb,
                app.cold_time_s,
                app.init_time_s,
                app.warm_time_s,
                100.0 * app.init_time_s / app.cold_time_s,
            ]
        )
    rows.sort(key=lambda r: -r[1])
    return format_table(
        ["Application", "Mem (MB)", "Run (s)", "Init (s)", "Warm (s)", "Init %"],
        rows,
        title="Table 1: FaaS application characteristics (FunctionBench)",
    )


def test_table1_applications(benchmark):
    table = benchmark(build_table1)
    write_result("table1.txt", table)
    apps = functionbench_apps()
    # The paper's headline: init can be ~80% of total running time.
    worst = max(a.init_time_s / a.cold_time_s for a in apps.values())
    assert worst >= 0.8
    # Memory footprints span roughly an order of magnitude.
    sizes = [a.memory_mb for a in apps.values()]
    assert max(sizes) / min(sizes) >= 8.0

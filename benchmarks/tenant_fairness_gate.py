"""Tenant-fairness determinism gate (the CI ``tenant-fairness`` job).

Replays the built-in ``noisy-neighbor`` scenario (one bursty attacker
tenant against 24 low-rate victim tenants, pinned seed) under the GD
policy twice — once on a legacy shared pool, once with a soft quota on
the attacker — and gates three things:

1. **Fairness direction** — Jain's fairness index over per-tenant
   warm-hit ratios must be *strictly* higher under the quota than in
   shared mode. This is the paper-level claim of the multi-tenant
   extension (docs/multi-tenancy.md): quotas stop the noisy neighbour
   from evicting everyone else's containers.
2. **Determinism pin** — the Jain indices (at full ``repr``
   precision), the lifecycle counters, and the per-tenant counters of
   both runs must equal the committed expectation
   (``benchmarks/TENANT_FAIRNESS.json``) bit for bit. Any drift means
   a code change altered tenant-aware simulation results; regenerate
   deliberately with ``--write`` and review the diff.
3. **Trace/aggregate agreement** — the CI job additionally records the
   quota run twice through the CLI under strict tracing and
   byte-compares the event streams (the chaos-replay pattern), so the
   pin here only needs to cover the aggregate numbers.

Usage::

    python benchmarks/tenant_fairness_gate.py                  # gate
    python benchmarks/tenant_fairness_gate.py --write          # re-pin
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.sim.scheduler import simulate
from repro.traces.synth import noisy_neighbor_trace

EXPECTED_PATH = pathlib.Path(__file__).parent / "TENANT_FAIRNESS.json"

#: Pool size and the attacker's soft quota, chosen so the attacker
#: (8 x 512 MB functions) saturates a shared pool but the 24 victims
#: (128 MB each) fit comfortably beside a quota-bounded attacker.
MEMORY_MB = 4096.0
ATTACKER_TENANT = 1
ATTACKER_QUOTA_MB = 1024.0


def _payload(result) -> dict:
    metrics = result.metrics
    return {
        "jain_fairness_index": repr(metrics.jain_fairness_index),
        "counters": metrics.counters(),
        "tenant_counters": {
            str(tenant_id): counts
            for tenant_id, counts in metrics.tenant_counters().items()
        },
    }


def build_report() -> dict:
    """Run the shared/quota pair on fresh traces and policies."""
    shared = simulate(noisy_neighbor_trace(), "GD", MEMORY_MB)
    quota = simulate(
        noisy_neighbor_trace(),
        "GD",
        MEMORY_MB,
        tenant_mode="quota",
        tenant_quotas={ATTACKER_TENANT: ATTACKER_QUOTA_MB},
    )
    return {
        "trace": "noisy-neighbor",
        "policy": "GD",
        "memory_mb": repr(MEMORY_MB),
        "attacker_tenant": ATTACKER_TENANT,
        "attacker_quota_mb": repr(ATTACKER_QUOTA_MB),
        "shared": _payload(shared),
        "quota": _payload(quota),
    }


def compare(actual: dict, expected: dict) -> List[str]:
    """Human-readable differences between two gate reports."""
    problems: List[str] = []

    def _walk(prefix: str, got, want) -> None:
        if isinstance(want, dict) and isinstance(got, dict):
            for key in sorted(set(got) | set(want)):
                _walk(
                    f"{prefix}.{key}" if prefix else key,
                    got.get(key),
                    want.get(key),
                )
        elif got != want:
            problems.append(f"{prefix}: got {got!r}, expected {want!r}")

    _walk("", actual, expected)
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--expected",
        default=str(EXPECTED_PATH),
        help="committed expectation to gate against",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the expectation file instead of gating",
    )
    args = parser.parse_args(argv)

    report = build_report()

    shared_jain = float(report["shared"]["jain_fairness_index"])
    quota_jain = float(report["quota"]["jain_fairness_index"])
    print(
        f"Jain fairness index: shared={shared_jain:.6f} "
        f"quota={quota_jain:.6f}"
    )
    if not quota_jain > shared_jain:
        print(
            "FAIL: quota mode must strictly improve Jain's fairness "
            f"index over shared mode ({quota_jain!r} <= {shared_jain!r})",
            file=sys.stderr,
        )
        return 1

    expected_path = pathlib.Path(args.expected)
    if args.write:
        expected_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {expected_path}")
        return 0

    expected = json.loads(expected_path.read_text())
    problems = compare(report, expected)
    if problems:
        print(
            f"FAIL: tenant-fairness drift vs {expected_path} "
            f"({len(problems)} difference(s)):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(
            "If the change is intentional, regenerate with --write and "
            "commit the diff.",
            file=sys.stderr,
        )
        return 1
    print(f"tenant-fairness gate OK (matches {expected_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Run the pinned-seed benchmark suite (thin wrapper over repro.bench).

Usage:
    PYTHONPATH=src python benchmarks/run_bench.py \
        --out BENCH_local.json --baseline benchmarks/BASELINE.json

See docs/performance.md for methodology and baseline-update steps.
"""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())

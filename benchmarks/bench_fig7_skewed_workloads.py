"""Figure 7: OpenWhisk vs FaasCache on skewed workload traces.

Regenerates the paper's Figure 7: cold and warm invocation counts for
vanilla OpenWhisk (10-minute TTL) and FaasCache (online Greedy-Dual)
on three skewed workloads — skewed frequency, cyclic access, and
skewed size — each run against the simulated invoker with a pool
smaller than the workload's working set.

Expected shape: FaasCache completes 50-100% more warm invocations on
the access patterns where recency misleads (cyclic, skewed size), and
never does worse.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.openwhisk.invoker import InvokerConfig
from repro.openwhisk.loadgen import compare_keepalive_systems
from repro.traces.synth import (
    cyclic_trace,
    skewed_frequency_trace,
    skewed_size_trace,
)

from conftest import write_result

#: (workload builder, invoker config) per Figure 7 bar group. Pool
#: sizes are set below each workload's working set so the eviction
#: choice — the thing the policies differ on — is exercised.
WORKLOADS = {
    "skewed-freq": (
        lambda: skewed_frequency_trace(duration_s=3600.0),
        InvokerConfig(memory_mb=576.0, cpu_cores=8),
    ),
    "cyclic": (
        lambda: cyclic_trace(num_functions=12, cycle_gap_s=2.0, num_cycles=300),
        InvokerConfig(memory_mb=1664.0, cpu_cores=8),
    ),
    "skewed-size": (
        lambda: skewed_size_trace(duration_s=3600.0),
        InvokerConfig(memory_mb=4838.0, cpu_cores=8),
    ),
}


def run_all():
    results = {}
    for name, (builder, config) in WORKLOADS.items():
        results[name] = compare_keepalive_systems(builder(), config)
    return results


def test_fig7_skewed_workloads(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, cmp in results.items():
        rows.append(
            [
                name,
                cmp.openwhisk.cold_starts,
                cmp.openwhisk.warm_starts,
                cmp.faascache.cold_starts,
                cmp.faascache.warm_starts,
                cmp.warm_start_gain,
                cmp.served_gain,
            ]
        )
    text = format_table(
        [
            "Workload",
            "OW cold",
            "OW warm",
            "FC cold",
            "FC warm",
            "Warm gain",
            "Served gain",
        ],
        rows,
        title="Figure 7: invocations served, OpenWhisk (OW) vs FaasCache (FC)",
    )
    write_result("fig7.txt", text)

    # FaasCache never serves fewer warm invocations...
    for cmp in results.values():
        assert cmp.warm_start_gain >= 0.95
    # ...and wins decisively on the recency-adversarial patterns.
    assert results["cyclic"].warm_start_gain >= 1.5
    assert results["skewed-size"].warm_start_gain >= 1.3

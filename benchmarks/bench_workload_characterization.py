"""Extension: Section 3 workload characterization of every trace.

The paper's Section 3 motivates the policies with workload facts:
inter-arrival times and memory sizes spanning orders of magnitude,
heavy-hitting functions dominating volume, and ~2x diurnal peaks. This
benchmark profiles the full synthetic day and the three evaluation
samples, both to characterize them and to certify that the synthetic
substitute actually has the properties the analysis depends on.
"""

from repro.analysis.reporting import format_table
from repro.analysis.workload import profile_trace

from conftest import write_result


def run_profiles(traces):
    return {name: profile_trace(trace) for name, trace in traces.items()}


def test_workload_characterization(benchmark, paper_traces, full_trace):
    traces = dict(paper_traces)
    traces["full-day"] = full_trace
    profiles = benchmark.pedantic(
        run_profiles, args=(traces,), rounds=1, iterations=1
    )
    labels = [label for label, __ in profiles["full-day"].rows()]
    rows = []
    for i, label in enumerate(labels):
        rows.append(
            [label] + [profiles[name].rows()[i][1] for name in profiles]
        )
    text = format_table(
        ["Statistic"] + list(profiles),
        rows,
        title="Workload characterization (Section 3 statistics)",
    )
    write_result("workload_characterization.txt", text)

    full = profiles["full-day"]
    # The Section 3 claims, certified on the synthetic substitute:
    assert full.iat_orders_of_magnitude >= 2.0
    assert full.memory_orders_of_magnitude >= 1.0
    assert full.popularity_top10_share > 0.5
    assert 1.5 <= full.diurnal_peak_to_mean <= 3.0
    # The rare sample is, indeed, rare: lower volume and higher IATs
    # than the representative sample.
    assert (
        profiles["rare"].mean_rate_per_s
        < 0.25 * profiles["representative"].mean_rate_per_s
    )

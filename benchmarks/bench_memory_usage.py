"""Memory occupancy over time (the artifact's compute_mem_usage analog).

The original artifact's pipeline computed per-policy memory usage
alongside cold/warm counts. This benchmark tracks the keep-alive
cache occupancy over the day for each policy at one server size and
reports the time-weighted mean and peak, exposing the
resource-conserving difference directly: caching policies keep the
pool full (memory is there to be used), while TTL leaves it
underutilized whenever functions lapse — the utilization half of the
paper's latency-vs-utilization tradeoff.
"""

from repro.analysis.reporting import format_table
from repro.core.policies import PAPER_POLICIES, create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.sim.server import GB_MB

from conftest import write_result

MEMORY_GB = 30.0


def run_occupancy(trace):
    rows = []
    for policy_name in PAPER_POLICIES:
        sim = KeepAliveSimulator(
            trace,
            create_policy(policy_name),
            MEMORY_GB * GB_MB,
            track_memory_timeline=True,
            timeline_interval_s=300.0,
        )
        metrics = sim.run().metrics
        timeline = metrics.memory_timeline
        peak = max(used for __, used in timeline)
        rows.append(
            [
                policy_name,
                metrics.mean_memory_mb / GB_MB,
                peak / GB_MB,
                100.0 * metrics.mean_memory_mb / (MEMORY_GB * GB_MB),
                metrics.cold_start_pct,
            ]
        )
    return rows


def test_memory_usage(benchmark, paper_traces):
    trace = paper_traces["representative"]
    rows = benchmark.pedantic(
        run_occupancy, args=(trace,), rounds=1, iterations=1
    )
    text = format_table(
        ["Policy", "Mean (GB)", "Peak (GB)", "Utilization %", "Cold %"],
        rows,
        title=f"Keep-alive cache occupancy at {MEMORY_GB:.0f} GB",
    )
    write_result("memory_usage.txt", text)

    by_policy = {row[0]: row for row in rows}
    # Resource-conserving GD keeps the cache fuller than expiring TTL...
    assert by_policy["GD"][3] > by_policy["TTL"][3]
    # ...and converts that memory into fewer cold starts.
    assert by_policy["GD"][4] < by_policy["TTL"][4]
    # Nothing exceeds the configured capacity.
    for row in rows:
        assert row[2] <= MEMORY_GB + 1e-9

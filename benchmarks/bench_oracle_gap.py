"""Extension: how close is Greedy-Dual to the clairvoyant bound?

Section 4.2 frames online keep-alive policies against "an optimal
offline algorithm that knows future requests" (Landlord's competitive
ratio). This benchmark measures the empirical gap on the
representative trace: the execution-time inflation of GD vs a
cost/size-aware clairvoyant policy (ORACLE-CS) and the plain
furthest-next-use oracle, across cache sizes.

Expected shape: the clairvoyant bound is below every online policy,
and GD covers most of the distance from LRU down to the bound —
quantifying how much of the offline-optimal benefit the online
Greedy-Dual heuristic actually captures.
"""

from repro.analysis.reporting import format_series_table
from repro.core.policies import create_policy
from repro.sim.scheduler import simulate
from repro.sim.server import GB_MB

from conftest import write_result

MEMORY_GRID_GB = [10.0, 20.0, 30.0, 40.0]


def run_gap(trace):
    series = {"LRU": [], "GD": [], "ORACLE": [], "ORACLE-CS": []}
    for memory_gb in MEMORY_GRID_GB:
        for name in series:
            if name.startswith("ORACLE"):
                policy = create_policy(name, trace=trace)
            else:
                policy = create_policy(name)
            metrics = simulate(trace, policy, memory_gb * GB_MB).metrics
            series[name].append(metrics.exec_time_increase_pct)
    return series


def test_oracle_gap(benchmark, paper_traces):
    trace = paper_traces["representative"]
    series = benchmark.pedantic(run_gap, args=(trace,), rounds=1, iterations=1)
    text = format_series_table(
        "Mem (GB)",
        MEMORY_GRID_GB,
        series,
        title="Online policies vs the clairvoyant bound (% exec increase)",
    )
    write_result("oracle_gap.txt", text)

    for i in range(len(MEMORY_GRID_GB)):
        lru, gd = series["LRU"][i], series["GD"][i]
        bound = series["ORACLE-CS"][i]
        # The clairvoyant bound is below both online policies...
        assert bound <= gd + 1e-9
        assert bound <= lru + 1e-9
        # ...and GD recovers most of the LRU-to-bound distance.
        if lru - bound > 0.5:
            recovered = (lru - gd) / (lru - bound)
            assert recovered > 0.5, (
                f"at {MEMORY_GRID_GB[i]} GB GD recovers only "
                f"{recovered:.0%} of the clairvoyant headroom"
            )

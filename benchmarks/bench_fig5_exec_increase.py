"""Figure 5: increase in execution time due to cold starts.

Regenerates all three subfigures — (a) representative, (b) rare,
(c) random — sweeping every keep-alive policy across server memory
sizes and reporting the percentage increase in execution time.

Expected shapes (Section 7.1):

* 5a: GD reduces the overhead by >3x vs TTL across a wide size range
  and reaches its low plateau at a much smaller cache.
* 5b: recency dominates for rare functions; caching policies
  (e.g. LRU) roughly halve TTL's overhead; HIST beats TTL but trails
  the caching policies.
* 5c: LRU is (near-)best; TTL behaves like LRU for rare objects.
"""

import pytest

from repro.analysis.reporting import format_line_plot, format_series_table
from repro.core.policies import PAPER_POLICIES

from conftest import MEMORY_GRIDS, write_result


def render(sweep, metric, title):
    grid = sweep.memory_sizes()
    series = {
        policy: [dict(sweep.series(policy, metric))[m] for m in grid]
        for policy in PAPER_POLICIES
    }
    table = format_series_table("Mem (GB)", grid, series, title=title)
    plot = format_line_plot(
        grid, series, x_label="memory (GB)", y_label=metric
    )
    return table + "\n\n" + plot


@pytest.mark.parametrize("workload", ["representative", "rare", "random"])
def test_fig5_exec_increase(benchmark, sweeps, workload):
    sweep = benchmark.pedantic(
        sweeps.get, args=(workload,), rounds=1, iterations=1
    )
    text = render(
        sweep,
        "exec_time_increase_pct",
        f"Figure 5 ({workload}): % increase in execution time",
    )
    write_result(f"fig5_{workload}.txt", text)

    grid = sweep.memory_sizes()
    gd = dict(sweep.series("GD", "exec_time_increase_pct"))
    ttl = dict(sweep.series("TTL", "exec_time_increase_pct"))
    lru = dict(sweep.series("LRU", "exec_time_increase_pct"))
    if workload == "representative":
        # GD >= 3x better than TTL across the mid-range sizes.
        mids = grid[1:-1]
        assert all(ttl[m] > 3.0 * gd[m] for m in mids)
    elif workload == "rare":
        # TTL's constant expiry makes it strictly worst and flat in
        # memory; caching-based LRU clearly beats it. (The paper sees
        # ~2x at 40-50 GB; see EXPERIMENTS.md for the deviation note.)
        for m in grid:
            assert ttl[m] >= max(gd[m], lru[m]) - 1e-9
        m = grid[-2]
        assert ttl[m] > 1.3 * lru[m]
        # TTL is expiry-bound: more memory does not help it.
        assert abs(ttl[grid[0]] - ttl[grid[-1]]) < 0.15 * ttl[grid[0]]
    else:
        # Recency suffices on random samples: LRU converges to the
        # best policy as memory grows and is never pathological.
        best_at_max = min(
            dict(sweep.series(p, "exec_time_increase_pct"))[grid[-1]]
            for p in PAPER_POLICIES
        )
        assert lru[grid[-1]] <= best_at_max + 0.1
        for m in grid:
            assert lru[m] < ttl[m] + 5.0

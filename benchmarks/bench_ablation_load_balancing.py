"""Ablation: cluster load balancing vs keep-alive locality (Section 9).

The paper's discussion argues that a stateful load balancer, by
running each function on the same small subset of servers, improves
per-server temporal locality and hence keep-alive effectiveness, while
randomized balancing is simpler but worse for locality. This ablation
measures the spectrum on the representative trace across a four-server
cluster at equal total memory.
"""

from repro.analysis.reporting import format_table
from repro.cluster.simulation import ClusterSimulator

from conftest import write_result

NUM_SERVERS = 4
SERVER_MEMORY_MB = 6.0 * 1024.0

BALANCERS = ("random", "round-robin", "least-loaded", "hash-affinity")


def run_ablation(trace):
    results = {}
    for name in BALANCERS:
        results[name] = ClusterSimulator(
            trace,
            name,
            num_servers=NUM_SERVERS,
            server_memory_mb=SERVER_MEMORY_MB,
            policy="GD",
        ).run()
    return results


def test_ablation_load_balancing(benchmark, paper_traces):
    trace = paper_traces["representative"]
    results = benchmark.pedantic(
        run_ablation, args=(trace,), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            r.cold_start_pct,
            r.exec_time_increase_pct,
            r.dropped,
            r.load_imbalance(),
        ]
        for name, r in results.items()
    ]
    text = format_table(
        ["Balancer", "Cold %", "Exec incr. %", "Dropped", "Imbalance"],
        rows,
        title=(
            f"Load-balancing ablation: {NUM_SERVERS} servers x "
            f"{SERVER_MEMORY_MB / 1024:.0f} GB, GD keep-alive"
        ),
    )
    write_result("ablation_load_balancing.txt", text)

    # The Section 9 claim: stateful affinity beats locality-blind
    # policies on cold starts, trading some load balance for it.
    affinity = results["hash-affinity"]
    for name in ("random", "round-robin", "least-loaded"):
        assert affinity.cold_start_pct < results[name].cold_start_pct, name
    assert affinity.load_imbalance() >= results["round-robin"].load_imbalance()

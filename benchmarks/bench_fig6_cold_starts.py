"""Figure 6: fraction of cold starts across policies and memory sizes.

The miss-ratio companion to Figure 5, over the same sweeps. The paper
notes the policy separation is smaller here than in Figure 5: the
cold-start *fraction* ignores the miss cost that Greedy-Dual
optimizes, so miss-ratio curves deviate from actual performance.
"""

import pytest

from conftest import write_result

from bench_fig5_exec_increase import render


@pytest.mark.parametrize("workload", ["representative", "rare", "random"])
def test_fig6_cold_starts(benchmark, sweeps, workload):
    sweep = benchmark.pedantic(
        sweeps.get, args=(workload,), rounds=1, iterations=1
    )
    text = render(
        sweep,
        "cold_start_pct",
        f"Figure 6 ({workload}): % cold starts",
    )
    write_result(f"fig6_{workload}.txt", text)

    grid = sweep.memory_sizes()
    gd = dict(sweep.series("GD", "cold_start_pct"))
    ttl = dict(sweep.series("TTL", "cold_start_pct"))
    # Caching-based keep-alive yields fewer cold starts than TTL at
    # every size (the paper's headline for this figure).
    assert all(gd[m] <= ttl[m] + 1e-9 for m in grid)
    # Cold-start fraction decreases with memory for the
    # resource-conserving GD policy.
    values = [gd[m] for m in grid]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

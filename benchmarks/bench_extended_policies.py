"""Extension: the wider caching-policy family on the paper's workloads.

The paper's Section 2.2 surveys the caching literature — LRU-K,
segmented LRU, ARC, LFU variants, Greedy-Dual-Size — and argues the
whole toolbox transfers to keep-alive. This benchmark runs the
extended family (GDS, ARC, SLRU, LRU-K, FIFO, RAND) next to the
paper's lineup on the representative trace, extending Figure 5a's
comparison.

Expected shape: the size/cost-aware Greedy-Dual family (GD, GDS)
leads; the locality family (ARC, SLRU, LRU-K, LRU) clusters in the
middle; FIFO/RAND trail; TTL stays worst (it expires containers that
memory could have kept).
"""

from repro.analysis.reporting import format_series_table
from repro.core.policies import EXTENDED_POLICIES
from repro.sim.sweep import run_sweep

from conftest import write_result

POLICIES = ("GD", "TTL", "LRU") + EXTENDED_POLICIES
MEMORY_GRID_GB = [10.0, 20.0, 40.0]


def run_comparison(trace):
    return run_sweep(trace, MEMORY_GRID_GB, policies=POLICIES)


def test_extended_policies(benchmark, paper_traces):
    trace = paper_traces["representative"]
    sweep = benchmark.pedantic(
        run_comparison, args=(trace,), rounds=1, iterations=1
    )
    series = {
        policy: [
            value
            for __, value in sweep.series(policy, "exec_time_increase_pct")
        ]
        for policy in POLICIES
    }
    text = format_series_table(
        "Mem (GB)",
        MEMORY_GRID_GB,
        series,
        title="Extended policy family: % increase in execution time",
    )
    write_result("extended_policies.txt", text)

    mid = MEMORY_GRID_GB[1]
    at_mid = {
        p: dict(sweep.series(p, "exec_time_increase_pct"))[mid]
        for p in POLICIES
    }
    # The Greedy-Dual family leads the locality-only family.
    assert at_mid["GD"] <= min(at_mid["ARC"], at_mid["SLRU"], at_mid["LRUK"])
    assert at_mid["GDS"] <= at_mid["LRU"]
    # TTL remains worse than every resource-conserving policy.
    for policy in POLICIES:
        if policy != "TTL":
            assert at_mid[policy] <= at_mid["TTL"] + 1e-9, policy

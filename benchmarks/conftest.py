"""Shared state for the benchmark harness.

The benchmarks regenerate every table and figure of the paper. The
trace-driven ones (Table 2, Figures 3, 5, 6, 9) share one synthetic
Azure dataset and its three workload samples; the policy sweeps of
Figures 5 and 6 are computed once per trace and shared.

Scale: the paper-sized samples (1000 / 400 / 200 functions) are kept,
with the generator's heavy tail capped so a full harness run finishes
in minutes on a laptop rather than the hours the authors report for
their 500 MB-step sweeps. Results are printed and written to
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.sweep import run_sweep
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import make_paper_traces

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Memory grids (GB) per workload, mirroring the x-axes of Figures 5/6.
MEMORY_GRIDS = {
    "representative": [10.0, 20.0, 30.0, 40.0, 60.0, 80.0],
    "rare": [20.0, 30.0, 40.0, 50.0, 60.0, 80.0],
    "random": [10.0, 20.0, 30.0, 40.0, 50.0],
}


def write_result(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def azure_dataset():
    return generate_azure_dataset(
        AzureGeneratorConfig(num_functions=3000, max_daily_invocations=20_000),
        seed=42,
    )


@pytest.fixture(scope="session")
def paper_traces(azure_dataset):
    return make_paper_traces(azure_dataset, seed=42)


@pytest.fixture(scope="session")
def full_trace(azure_dataset):
    """Every reused function of the dataset — the population-scale
    trace the SHARDS sampling ablation needs (spatial sampling is only
    meaningful over thousands of functions)."""
    from repro.traces.preprocess import dataset_to_trace

    return dataset_to_trace(azure_dataset, name="full-day")


class _SweepCache:
    """Figure 5 and Figure 6 plot two metrics of the same sweeps."""

    def __init__(self, traces):
        self._traces = traces
        self._sweeps = {}

    def get(self, name):
        if name not in self._sweeps:
            self._sweeps[name] = run_sweep(
                self._traces[name], MEMORY_GRIDS[name]
            )
        return self._sweeps[name]


@pytest.fixture(scope="session")
def sweeps(paper_traces):
    return _SweepCache(paper_traces)

"""Harness health: the headline shape holds across generator seeds.

Every figure in this harness uses one fixed synthetic dataset (seed
42). This benchmark re-derives the Figure 5a headline — GD beats TTL
by >3x on the representative trace at mid-range memory — on three
independently seeded datasets, guarding the reproduction against
having been tuned to one lucky draw of the generator.
"""

from repro.analysis.reporting import format_table
from repro.sim.scheduler import simulate
from repro.sim.server import GB_MB
from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
from repro.traces.sampling import make_paper_traces

from conftest import write_result

SEEDS = (41, 42, 43)
MEMORY_GB = 20.0


def run_seeds():
    rows = []
    for seed in SEEDS:
        dataset = generate_azure_dataset(
            AzureGeneratorConfig(
                num_functions=1500, max_daily_invocations=10_000
            ),
            seed=seed,
        )
        traces = make_paper_traces(
            dataset, sizes={"representative": 300}, seed=seed
        )
        trace = traces["representative"]
        gd = simulate(trace, "GD", MEMORY_GB * GB_MB).metrics
        ttl = simulate(trace, "TTL", MEMORY_GB * GB_MB).metrics
        rows.append(
            [
                seed,
                len(trace),
                gd.exec_time_increase_pct,
                ttl.exec_time_increase_pct,
                ttl.exec_time_increase_pct / max(gd.exec_time_increase_pct, 1e-9),
            ]
        )
    return rows


def test_seed_robustness(benchmark):
    rows = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    text = format_table(
        ["Seed", "Invocations", "GD incr. %", "TTL incr. %", "TTL/GD"],
        rows,
        title=(
            f"Figure 5a headline across generator seeds "
            f"({MEMORY_GB:.0f} GB, representative)"
        ),
    )
    write_result("seed_robustness.txt", text)
    ratios = [row[4] for row in rows]
    # The robust core of the claim: GD beats TTL decisively (>2x) on
    # every draw; the paper's >3x shows up in most draws but the exact
    # factor varies with the generator seed (see EXPERIMENTS.md).
    for row in rows:
        seed, __, gd, ttl, ratio = row
        assert ratio > 2.0, f"seed {seed}: TTL/GD only {ratio:.2f}"
    assert max(ratios) > 3.0

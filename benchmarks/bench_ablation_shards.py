"""Ablation: SHARDS sampling rate vs hit-ratio-curve accuracy and cost.

Section 5.1 notes exact reuse-distance computation is an expensive
one-time O(N·M) operation and that SHARDS sampling "can be applied to
drastically reduce the overhead". This ablation sweeps the sampling
rate and reports, against the exact curve: the mean absolute hit-ratio
error over the provisioning-relevant quantiles, the error of the
provisioned size at a 90% target, and the wall-clock speedup.
"""

import time

from repro.analysis.reporting import format_table
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.provisioning.shards import shards_curve

from conftest import write_result

RATES = (0.5, 0.25, 0.1, 0.05)


def run_ablation(trace):
    t0 = time.perf_counter()
    exact = HitRatioCurve.from_distances(reuse_distances(trace))
    exact_s = time.perf_counter() - t0
    probes = [exact.required_size(q) for q in (0.2, 0.4, 0.6, 0.8)]
    target = min(0.9, exact.max_hit_ratio)
    rows = []
    for rate in RATES:
        t0 = time.perf_counter()
        sampled = shards_curve(trace, rate=rate, seed=1)
        sampled_s = time.perf_counter() - t0
        error = sum(
            abs(sampled.hit_ratio(p) - exact.hit_ratio(p)) for p in probes
        ) / len(probes)
        try:
            size_err = abs(
                sampled.required_size(target) - exact.required_size(target)
            ) / max(exact.required_size(target), 1.0)
        except ValueError:
            size_err = float("nan")
        rows.append([rate, error, size_err, exact_s / max(sampled_s, 1e-9)])
    return exact_s, rows


def test_ablation_shards(benchmark, full_trace):
    trace = full_trace
    exact_s, rows = benchmark.pedantic(
        run_ablation, args=(trace,), rounds=1, iterations=1
    )
    text = format_table(
        ["Rate", "Mean |HR err|", "Size err @90%", "Speedup"],
        rows,
        title=(
            "SHARDS sampling ablation "
            f"(exact scan: {exact_s * 1000:.0f} ms)"
        ),
    )
    write_result("ablation_shards.txt", text)
    by_rate = {row[0]: row for row in rows}
    # Even aggressive sampling keeps the curve accurate enough for
    # coarse-grained provisioning (the paper's use of it).
    assert by_rate[0.25][1] < 0.1
    # Lower rates run faster.
    assert by_rate[0.05][3] > by_rate[0.5][3]

"""Machine-readable benchmark export for CI (``BENCH_ci.json``).

Runs the two numbers the CI bench-smoke job gates on and writes them
as JSON so regressions are diffable across runs:

* **invocations_per_s** — raw simulator throughput (GD on the
  multitenant configuration, best of N replays), guarded by the same
  10k/s floor as the pytest benchmark;
* **tracing_disabled_overhead_pct** — wall-clock cost of the
  repro.obs emission-site guards with tracing off, measured against a
  frozen pre-instrumentation copy of the hot path. Budget: 2%.

Exit status is nonzero if either gate fails, so the CI job can upload
the artifact *and* fail the build from one invocation::

    python benchmarks/ci_export.py --out BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

# Runnable as a script from the repo root: the benchmarks directory is
# not a package, so make its modules importable directly.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_simulator_throughput import (  # noqa: E402
    MEMORY_MB,
    OVERHEAD_BUDGET_PCT,
    TRACE,
    measure_disabled_overhead_pct,
)
from repro.core.policies import create_policy  # noqa: E402
from repro.sim.scheduler import KeepAliveSimulator  # noqa: E402

THROUGHPUT_FLOOR = 10_000.0


def measure_throughput(repeats: int = 5) -> float:
    """Best-of-N invocations/second for GD on the multitenant trace."""
    best = float("inf")
    for __ in range(repeats):
        sim = KeepAliveSimulator(TRACE, create_policy("GD"), MEMORY_MB)
        started = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - started)
    return len(TRACE) / best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_ci.json")
    parser.add_argument(
        "--overhead-attempts",
        type=int,
        default=3,
        help="re-measure the overhead this many times before failing",
    )
    args = parser.parse_args(argv)

    throughput = measure_throughput()
    overhead_pct = None
    for __ in range(max(1, args.overhead_attempts)):
        overhead_pct = measure_disabled_overhead_pct()
        if overhead_pct <= OVERHEAD_BUDGET_PCT:
            break

    failures = []
    if throughput <= THROUGHPUT_FLOOR:
        failures.append(
            f"throughput {throughput:,.0f} inv/s is below the "
            f"{THROUGHPUT_FLOOR:,.0f} floor"
        )
    if overhead_pct > OVERHEAD_BUDGET_PCT:
        failures.append(
            f"disabled-tracing overhead {overhead_pct:.2f}% exceeds the "
            f"{OVERHEAD_BUDGET_PCT:.1f}% budget"
        )

    payload = {
        "benchmark": "simulator-throughput",
        "trace": TRACE.name,
        "invocations": len(TRACE),
        "memory_mb": MEMORY_MB,
        "invocations_per_s": round(throughput, 1),
        "throughput_floor_per_s": THROUGHPUT_FLOOR,
        "tracing_disabled_overhead_pct": round(overhead_pct, 3),
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "ok": not failures,
        "failures": failures,
    }
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    print(
        f"  invocations/s: {throughput:,.0f} "
        f"(floor {THROUGHPUT_FLOOR:,.0f})"
    )
    print(
        f"  disabled-tracing overhead: {overhead_pct:+.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.1f}%)"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: the terms of the Greedy-Dual priority (Equation 1).

Priority = Clock + Freq × Cost / Size. Section 4.2 observes that
dropping terms recovers simpler policies (clock only → LRU, frequency
only → LFU, 1/size only → SIZE). This ablation zeroes the frequency
and cost weights of the full GD implementation on the representative
trace and shows each term earns its keep: the full formula dominates
its ablated variants.
"""

from repro.analysis.reporting import format_table
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.sim.scheduler import simulate
from repro.sim.server import GB_MB

from conftest import write_result

MEMORY_GB = 20.0

VARIANTS = {
    "full (freq+cost/size)": dict(frequency_weight=1.0, cost_weight=1.0),
    "no frequency": dict(frequency_weight=0.0, cost_weight=1.0),
    "no cost": dict(frequency_weight=1.0, cost_weight=0.0),
    "clock only (LRU-like)": dict(frequency_weight=0.0, cost_weight=0.0),
}


def run_ablation(trace):
    results = {}
    for name, weights in VARIANTS.items():
        policy = GreedyDualPolicy(**weights)
        results[name] = simulate(trace, policy, MEMORY_GB * GB_MB).metrics
    return results


def test_ablation_gd_terms(benchmark, paper_traces):
    trace = paper_traces["representative"]
    results = benchmark.pedantic(
        run_ablation, args=(trace,), rounds=1, iterations=1
    )
    rows = [
        [name, m.cold_start_pct, m.exec_time_increase_pct]
        for name, m in results.items()
    ]
    text = format_table(
        ["Variant", "Cold %", "Exec incr. %"],
        rows,
        title=f"Greedy-Dual term ablation ({MEMORY_GB:.0f} GB, representative)",
    )
    write_result("ablation_gd_terms.txt", text)

    full = results["full (freq+cost/size)"]
    # Zeroing the frequency or cost weight collapses the value term
    # entirely (the terms multiply), leaving clock order: all three
    # ablated variants should behave like LRU and be worse than full GD.
    for name, metrics in results.items():
        if name != "full (freq+cost/size)":
            assert (
                metrics.exec_time_increase_pct
                >= full.exec_time_increase_pct - 1e-9
            ), name
    lru_like = results["clock only (LRU-like)"]
    assert lru_like.exec_time_increase_pct > 1.2 * full.exec_time_increase_pct

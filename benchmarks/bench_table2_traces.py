"""Table 2: size and inter-arrival details of the evaluation workloads.

Regenerates the paper's Table 2 for the three Azure-sample workloads
(RARE / REPRESENTATIVE / RANDOM). The paper reports the replayed
request intensities (190 / 30 / 600 requests per second); we report
both the natural day-time statistics of our samples and the Table 2
intensities after applying the same time compression.
"""

from repro.analysis.reporting import format_table
from repro.traces.sampling import TABLE2_TARGET_RATES, scale_trace_rate

from conftest import write_result


def build_table2(paper_traces) -> str:
    rows = []
    for name in ("representative", "rare", "random"):
        trace = paper_traces[name]
        compressed = scale_trace_rate(trace, TABLE2_TARGET_RATES[name])
        rows.append(
            [
                name,
                trace.num_functions,
                len(trace),
                trace.arrival_rate(),
                TABLE2_TARGET_RATES[name],
                compressed.mean_interarrival_s() * 1000.0,
            ]
        )
    return format_table(
        [
            "Trace",
            "Functions",
            "Invocations",
            "Natural req/s",
            "Replay req/s",
            "Replay IAT (ms)",
        ],
        rows,
        title="Table 2: evaluation workload characteristics",
    )


def test_table2_traces(benchmark, paper_traces):
    table = benchmark(build_table2, paper_traces)
    write_result("table2.txt", table)
    rep, rare, rand = (
        paper_traces["representative"],
        paper_traces["rare"],
        paper_traces["random"],
    )
    # Sample sizes follow the paper's construction.
    assert rare.num_functions <= 1000
    assert rep.num_functions == 400
    assert rand.num_functions == 200
    # Ordering of volumes matches the paper: the rare trace has far
    # fewer invocations than the representative one.
    assert len(rare) < 0.25 * len(rep)
    # Compressed replay hits the paper's intensities.
    compressed = scale_trace_rate(rep, TABLE2_TARGET_RATES["representative"])
    assert abs(compressed.arrival_rate() - 190.0) / 190.0 < 1e-6
